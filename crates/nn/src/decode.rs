//! Forward-only incremental inference (the generation fast path).
//!
//! Training builds an autograd [`Graph`](crate::Graph) per forward pass; the
//! graph-based `greedy` additionally re-runs the whole decoder over the full
//! prefix for every emitted token — O(T²) layer passes plus per-step tape and
//! parameter-clone allocation for work that is pure inference. This module is
//! the O(T)-per-token replacement: a [`DecodeState`] holds
//!
//! * the encoder output, computed **once** per decode,
//! * per-decoder-layer **cross-attention K/V**, projected once from the
//!   encoder output,
//! * per-layer **self-attention K/V caches** that grow by one row per emitted
//!   token, and
//! * reusable scratch buffers, so the steady-state decode loop performs no
//!   heap allocation (cache rows land in pre-reserved vectors).
//!
//! [`GruDecodeState`] is the analogous path for the GRU baseline: the
//! recurrent hidden state is carried across steps instead of being rebuilt
//! from scratch on a fresh graph at every token.
//!
//! # Bit-identity
//!
//! Every kernel here replays the *same f32 operations in the same order* as
//! the graph path, so decoded token streams and logits are bit-identical to
//! the graph implementations (`greedy_graph`, `forced_logprob_graph`) at
//! every configuration and thread count — *within a kernel mode* (see
//! [`crate::kernel`]; changing `VEGA_KERNEL` changes reduction order and may
//! move low bits). That identity is load-bearing: the determinism and chaos
//! suites, the serve cache (equal keys must imply byte-identical payloads),
//! and the golden vectors all assume generation is a pure function of
//! (weights, input, kernel mode). The specific invariants:
//!
//! * Row kernels are the *same code* as [`Tensor::matmul`]'s inner loops —
//!   both dispatch through the [`crate::kernel`] tier, which accumulates
//!   each output element one rank-1 update at a time in ascending `k`
//!   (with the exact zero-skip) and takes one full-length dot per
//!   transposed-product element, so the decode and graph paths cannot
//!   drift apart.
//! * The causal mask adds `-1e9` before softmax in the graph path; `exp`
//!   underflows those lanes to exactly `0.0`, so softmax over the unmasked
//!   prefix — what the cache computes — yields the identical row, and the
//!   masked zeros are exact no-ops in the attention-value product.
//! * Layer norm, softmax, and the activations copy the graph ops' expression
//!   shapes verbatim (same reduction order, same `(x - mean) / std * g + b`
//!   association).

use crate::gru::{GruCell, GruSeq2Seq};
use crate::kernel::{with_kernel, Kernel, K_TILE};
use crate::tensor::Tensor;
use crate::transformer::{AttnParams, FfParams, LnParams, Transformer};
use std::sync::Arc;

/// Per-thread decode attribution: how many tokens the *current thread* has
/// decoded, and how long the decode steps took, since the last [`reset`].
///
/// The global obs registry aggregates `decode.tokens` /
/// `decode.step_seconds` across every thread in the process, which is right
/// for fleet-level dashboards but useless for answering "how much decode
/// work did *this request* do". Generation runs single-threaded on whichever
/// worker picked the job up, so a thread-local tally that the serve engine
/// resets before calling `generate_function` and snapshots after is an exact
/// per-request attribution — no locks, no ids threaded through the model
/// layer. Both greedy decode loops (transformer and GRU) bump it alongside
/// the global counters.
pub mod tally {
    use std::cell::Cell;

    thread_local! {
        static TOKENS: Cell<u64> = const { Cell::new(0) };
        static SECONDS: Cell<f64> = const { Cell::new(0.0) };
    }

    /// Zeroes the calling thread's tally (call before a generation).
    pub fn reset() {
        TOKENS.with(|t| t.set(0));
        SECONDS.with(|s| s.set(0.0));
    }

    /// Records one decoded token that took `seconds` on this thread.
    pub fn bump(seconds: f64) {
        TOKENS.with(|t| t.set(t.get() + 1));
        SECONDS.with(|s| s.set(s.get() + seconds));
    }

    /// Records `tokens` decoded tokens that took `seconds` in one call.
    ///
    /// Used when decode work happened *off* this thread — a continuous-
    /// batching broker steps many sessions on its own thread and hands each
    /// requester back its exact token count and its share of the batched
    /// step time; the requester bumps its own thread-local so the
    /// reset/snapshot attribution protocol keeps working unchanged.
    pub fn bump_n(tokens: u64, seconds: f64) {
        TOKENS.with(|t| t.set(t.get() + tokens));
        SECONDS.with(|s| s.set(s.get() + seconds));
    }

    /// The calling thread's `(tokens, seconds)` since the last [`reset`].
    pub fn snapshot() -> (u64, f64) {
        (TOKENS.with(Cell::get), SECONDS.with(Cell::get))
    }
}

// ---------------------------------------------------------------------------
// Row kernels (shared by the transformer and GRU fast paths)
// ---------------------------------------------------------------------------
//
// The hand-rolled per-row loops that used to live here are now the single
// implementations in `crate::kernel`, dispatched by `VEGA_KERNEL`. The
// decode fast paths and the tensor/graph path call the exact same code, so
// within a kernel mode their f32 sequences cannot drift apart. Attention-
// weighted sums over cached value rows (`out = scores · v_rows`) are
// `row_matmul_into` too: its zero-skip drops exactly the softmax lanes that
// underflowed to zero, as the graph path's matmul does.
pub(crate) use crate::kernel::{add_assign, dot, layer_norm_row, row_matmul_into};

/// In-place softmax over one row (re-exported from the kernel tier; see
/// [`crate::kernel::softmax_row`] for the determinism contract).
///
/// Public so external decode drivers (the serve-side continuous-batching
/// broker scoring forced sequences) can replicate `forced_logprob`'s exact
/// f32 sequence instead of reimplementing it.
pub use crate::kernel::softmax_row;

/// One logits row `out = xn · w + b`, branching on
/// [`crate::kernel::dot_form_logits`]: dot-form reads the pre-transposed
/// weight `wt` (`vocab × d`) one contiguous row per vocab id through the
/// fixed-tree [`Kernel::dot`] (the AVX2 win the matmul bench measures);
/// axpy-form is the classic [`row_matmul_into`] column sweep (faster in
/// scalar mode, whose serial-chain `dot` loses ~4×). Every decode *and*
/// graph-reference path funnels through this same branch, so within one
/// (kernel mode, dot-form) setting the two sides stay bit-identical.
pub(crate) fn project_logits_row(xn: &[f32], w: &Tensor, wt: &Tensor, b: &[f32], out: &mut [f32]) {
    if crate::kernel::dot_form_logits() {
        for (v, o) in out.iter_mut().enumerate() {
            *o = dot(xn, wt.row(v));
        }
    } else {
        row_matmul_into(xn, w, out);
    }
    add_assign(out, b);
}

/// Batched [`project_logits_row`]: one logits row per listed slot (`xn` at
/// stride `w.rows`, `out` at stride `w.cols`). The dot-form loop is
/// weight-major — each transposed weight row crosses the cache hierarchy
/// once for the whole batch, mirroring [`batch_row_matmul_into`]'s
/// amortization — and per slot the f32 sequence is exactly the single-row
/// helper's, so batch and single logits agree bitwise.
pub(crate) fn project_logits_rows(
    slots: &[usize],
    xn: &[f32],
    w: &Tensor,
    wt: &Tensor,
    b: &[f32],
    out: &mut [f32],
) {
    let (d, vocab) = (w.rows, w.cols);
    if crate::kernel::dot_form_logits() {
        for v in 0..vocab {
            let wr = wt.row(v);
            for &s in slots {
                out[s * vocab + v] = dot(&xn[s * d..(s + 1) * d], wr);
            }
        }
    } else {
        batch_row_matmul_into(slots, xn, w, out);
    }
    for &s in slots {
        add_assign(&mut out[s * vocab..(s + 1) * vocab], b);
    }
}

// ---------------------------------------------------------------------------
// Forward-only matrix helpers (encoder; runs once per decode)
// ---------------------------------------------------------------------------

/// Row-wise layer norm over a matrix, replicating `Graph::layer_norm`.
fn layer_norm_rows(x: &Tensor, gain: &Tensor, bias: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.rows, x.cols);
    for r in 0..x.rows {
        layer_norm_row(x.row(r), gain.as_slice(), bias.as_slice(), out.row_mut(r));
    }
    out
}

/// Column concatenation, replicating `Graph::concat_cols`.
fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
    debug_assert_eq!(a.rows, b.rows, "concat rows");
    let mut out = Tensor::zeros(a.rows, a.cols + b.cols);
    for r in 0..a.rows {
        out.row_mut(r)[..a.cols].copy_from_slice(a.row(r));
        out.row_mut(r)[a.cols..].copy_from_slice(b.row(r));
    }
    out
}

/// Elementwise ReLU, replicating `Graph::relu`.
fn relu(x: &Tensor) -> Tensor {
    Tensor::from_vec(
        x.rows,
        x.cols,
        x.as_slice().iter().map(|v| v.max(0.0)).collect(),
    )
}

impl Transformer {
    fn embed_with_pos_fwd(&self, ids: &[usize]) -> Tensor {
        let tok = self.store.value(self.tok_emb);
        let pos = self.store.value(self.pos_emb);
        let mut te = Tensor::zeros(ids.len(), tok.cols);
        let mut pe = Tensor::zeros(ids.len(), pos.cols);
        for (r, &id) in ids.iter().enumerate() {
            te.row_mut(r).copy_from_slice(tok.row(id));
            pe.row_mut(r)
                .copy_from_slice(pos.row(r.min(self.cfg.max_len - 1)));
        }
        te.add(&pe)
    }

    /// Unmasked multi-head attention on plain tensors (encoder self-attention
    /// uses `q_in == kv`), replaying the graph op sequence exactly.
    fn attention_fwd(&self, q_in: &Tensor, kv: &Tensor, p: &AttnParams) -> Tensor {
        let dh = self.cfg.d_model / self.cfg.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut concat: Option<Tensor> = None;
        for h in 0..self.cfg.n_heads {
            let q = q_in.matmul(self.store.value(p.wq[h]), false);
            let k = kv.matmul(self.store.value(p.wk[h]), false);
            let v = kv.matmul(self.store.value(p.wv[h]), false);
            let scores = q.matmul(&k, true).scale(scale);
            let a = scores.softmax_rows();
            let head = a.matmul(&v, false);
            concat = Some(match concat {
                None => head,
                Some(c) => concat_cols(&c, &head),
            });
        }
        concat
            .expect("at least one attention head")
            .matmul(self.store.value(p.wo), false)
    }

    fn feed_forward_fwd(&self, x: &Tensor, p: &FfParams) -> Tensor {
        let h = x
            .matmul(self.store.value(p.w1), false)
            .add_row_broadcast(self.store.value(p.b1));
        relu(&h)
            .matmul(self.store.value(p.w2), false)
            .add_row_broadcast(self.store.value(p.b2))
    }

    fn ln_fwd(&self, x: &Tensor, p: &LnParams) -> Tensor {
        layer_norm_rows(x, self.store.value(p.gain), self.store.value(p.bias))
    }

    /// Forward-only encoder pass (no autograd tape); bit-identical to the
    /// graph path's `encode`.
    pub(crate) fn encode_fwd(&self, src: &[usize]) -> Tensor {
        let mut x = self.embed_with_pos_fwd(src);
        for layer in &self.enc_layers {
            let xn = self.ln_fwd(&x, &layer.ln1);
            let att = self.attention_fwd(&xn, &xn, &layer.attn);
            x = x.add(&att);
            let xn = self.ln_fwd(&x, &layer.ln2);
            let ffo = self.feed_forward_fwd(&xn, &layer.ff);
            x = x.add(&ffo);
        }
        x
    }

    /// Starts an incremental decode session over `src` (clamped to
    /// `max_len`): encodes once, projects every decoder layer's
    /// cross-attention K/V once, and allocates the self-attention caches and
    /// scratch buffers. Subsequent [`DecodeState::step`] calls cost one
    /// token-row pass through the decoder instead of a full-prefix re-run.
    pub fn begin_decode(&self, src: &[usize]) -> DecodeState<'_> {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let enc = self.encode_fwd(src);
        let d = self.cfg.d_model;
        let dh = d / self.cfg.n_heads;
        let mut cross_k = Vec::with_capacity(self.dec_layers.len());
        let mut cross_v = Vec::with_capacity(self.dec_layers.len());
        let mut self_k = Vec::with_capacity(self.dec_layers.len());
        let mut self_v = Vec::with_capacity(self.dec_layers.len());
        for layer in &self.dec_layers {
            let mut lk = Vec::with_capacity(self.cfg.n_heads);
            let mut lv = Vec::with_capacity(self.cfg.n_heads);
            let mut sk = Vec::with_capacity(self.cfg.n_heads);
            let mut sv = Vec::with_capacity(self.cfg.n_heads);
            for h in 0..self.cfg.n_heads {
                lk.push(enc.matmul(self.store.value(layer.cross_attn.wk[h]), false));
                lv.push(enc.matmul(self.store.value(layer.cross_attn.wv[h]), false));
                let empty = || Tensor::with_row_capacity(dh, self.cfg.max_len);
                sk.push(empty());
                sv.push(empty());
            }
            cross_k.push(lk);
            cross_v.push(lv);
            self_k.push(sk);
            self_v.push(sv);
        }
        DecodeState {
            model: self,
            wt: self.out_proj_t(),
            cross_k,
            cross_v,
            self_k,
            self_v,
            len: 0,
            x: vec![0.0; d],
            xn: vec![0.0; d],
            q: vec![0.0; dh],
            kv_row: vec![0.0; dh],
            scores: vec![0.0; self.cfg.max_len.max(enc.rows)],
            heads: vec![0.0; d],
            tmp_d: vec![0.0; d],
            ff: vec![0.0; self.cfg.d_ff],
            logits: vec![0.0; self.cfg.vocab],
            many: ManyScratch::default(),
        }
    }

    /// Incremental forced decode: feeds each token of `feed` through a fresh
    /// [`DecodeState`] and returns the argmax token id after every step — the
    /// fast-path twin of [`Transformer::forced_steps_graph`] for equivalence
    /// tests and benches that need decodes of a controlled length.
    pub fn forced_steps(&self, src: &[usize], feed: &[usize]) -> Vec<usize> {
        let feed = &feed[..feed.len().min(self.cfg.max_len)];
        let mut st = self.begin_decode(src);
        feed.iter()
            .map(|&t| crate::seq2seq::argmax(st.step(t)).unwrap_or(0))
            .collect()
    }
}

/// Incremental decoder state for a [`Transformer`]: encoder-derived
/// cross-attention K/V (computed once), growing per-layer self-attention K/V
/// caches, and reusable scratch rows. Create with
/// [`Transformer::begin_decode`], advance with [`DecodeState::step`].
pub struct DecodeState<'m> {
    model: &'m Transformer,
    /// The output projection pre-transposed to `vocab × d`, snapshotted from
    /// the model's epoch-keyed cache once per session (weights are immutable
    /// while the state borrows the model, so it cannot go stale mid-decode).
    wt: Arc<Tensor>,
    /// `[layer][head]`: encoder keys/values (`enc_len × d_head`), fixed.
    cross_k: Vec<Vec<Tensor>>,
    cross_v: Vec<Vec<Tensor>>,
    /// `[layer][head]`: cached self-attention keys/values, one row per
    /// decoded position (pre-reserved to `max_len` rows).
    self_k: Vec<Vec<Tensor>>,
    self_v: Vec<Vec<Tensor>>,
    len: usize,
    // Scratch rows, reused every step.
    x: Vec<f32>,
    xn: Vec<f32>,
    q: Vec<f32>,
    kv_row: Vec<f32>,
    scores: Vec<f32>,
    heads: Vec<f32>,
    tmp_d: Vec<f32>,
    ff: Vec<f32>,
    logits: Vec<f32>,
    /// Flat multi-position scratch for [`DecodeState::step_many`], grown
    /// lazily to the largest chunk fed (plain `step` never touches it).
    many: ManyScratch,
}

/// Flat per-position scratch for [`DecodeState::step_many`]: one row per
/// chunk position at the natural stride for each buffer, mirroring
/// [`BatchDecodeState`]'s layout with positions in place of slots.
#[derive(Default)]
struct ManyScratch {
    ids: Vec<usize>,
    x: Vec<f32>,
    xn: Vec<f32>,
    q: Vec<f32>,
    kv_row: Vec<f32>,
    heads: Vec<f32>,
    tmp_d: Vec<f32>,
    ff: Vec<f32>,
    logits: Vec<f32>,
}

impl ManyScratch {
    fn ensure(&mut self, t: usize, d: usize, dh: usize, d_ff: usize, vocab: usize) {
        fn grow(v: &mut Vec<f32>, n: usize) {
            if v.len() < n {
                v.resize(n, 0.0);
            }
        }
        if self.ids.len() != t {
            self.ids = (0..t).collect();
        }
        grow(&mut self.x, t * d);
        grow(&mut self.xn, t * d);
        grow(&mut self.q, t * dh);
        grow(&mut self.kv_row, t * dh);
        grow(&mut self.heads, t * d);
        grow(&mut self.tmp_d, t * d);
        grow(&mut self.ff, t * d_ff);
        grow(&mut self.logits, t * vocab);
    }
}

impl DecodeState<'_> {
    /// Number of tokens fed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first [`DecodeState::step`].
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feeds `token` at the next position and returns the logits row for it —
    /// bit-identical to the last row of the graph path's full-prefix decode,
    /// at one token-row of work per layer instead of a full-prefix re-run.
    ///
    /// # Panics
    /// Panics if more than `max_len` tokens are fed (the graph path would
    /// index the positional table out of range at the same point).
    pub fn step(&mut self, token: usize) -> &[f32] {
        let m = self.model;
        let d = m.cfg.d_model;
        let n_heads = m.cfg.n_heads;
        let dh = d / n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        assert!(self.len < m.cfg.max_len, "decode past max_len");
        let pos = self.len.min(m.cfg.max_len - 1);
        // Token + positional embedding for this row.
        let te = m.store.value(m.tok_emb).row(token);
        let pe = m.store.value(m.pos_emb).row(pos);
        for c in 0..d {
            self.x[c] = te[c] + pe[c];
        }
        for (l, layer) in m.dec_layers.iter().enumerate() {
            // Self-attention over the cached prefix plus this row.
            layer_norm_row(
                &self.x,
                m.store.value(layer.ln1.gain).as_slice(),
                m.store.value(layer.ln1.bias).as_slice(),
                &mut self.xn,
            );
            for h in 0..n_heads {
                row_matmul_into(&self.xn, m.store.value(layer.self_attn.wq[h]), &mut self.q);
                let (sk, sv) = (&mut self.self_k[l][h], &mut self.self_v[l][h]);
                row_matmul_into(
                    &self.xn,
                    m.store.value(layer.self_attn.wk[h]),
                    &mut self.kv_row,
                );
                sk.push_row(&self.kv_row);
                row_matmul_into(
                    &self.xn,
                    m.store.value(layer.self_attn.wv[h]),
                    &mut self.kv_row,
                );
                sv.push_row(&self.kv_row);
                let t1 = sk.rows;
                for j in 0..t1 {
                    self.scores[j] = dot(&self.q, sk.row(j)) * scale;
                }
                softmax_row(&mut self.scores[..t1]);
                row_matmul_into(
                    &self.scores[..t1],
                    sv,
                    &mut self.heads[h * dh..(h + 1) * dh],
                );
            }
            row_matmul_into(
                &self.heads,
                m.store.value(layer.self_attn.wo),
                &mut self.tmp_d,
            );
            add_assign(&mut self.x, &self.tmp_d);
            // Cross-attention against the fixed encoder K/V.
            layer_norm_row(
                &self.x,
                m.store.value(layer.ln2.gain).as_slice(),
                m.store.value(layer.ln2.bias).as_slice(),
                &mut self.xn,
            );
            for h in 0..n_heads {
                row_matmul_into(&self.xn, m.store.value(layer.cross_attn.wq[h]), &mut self.q);
                let (ck, cv) = (&self.cross_k[l][h], &self.cross_v[l][h]);
                for j in 0..ck.rows {
                    self.scores[j] = dot(&self.q, ck.row(j)) * scale;
                }
                softmax_row(&mut self.scores[..ck.rows]);
                row_matmul_into(
                    &self.scores[..ck.rows],
                    cv,
                    &mut self.heads[h * dh..(h + 1) * dh],
                );
            }
            row_matmul_into(
                &self.heads,
                m.store.value(layer.cross_attn.wo),
                &mut self.tmp_d,
            );
            add_assign(&mut self.x, &self.tmp_d);
            // Feed-forward.
            layer_norm_row(
                &self.x,
                m.store.value(layer.ln3.gain).as_slice(),
                m.store.value(layer.ln3.bias).as_slice(),
                &mut self.xn,
            );
            row_matmul_into(&self.xn, m.store.value(layer.ff.w1), &mut self.ff);
            add_assign(&mut self.ff, m.store.value(layer.ff.b1).as_slice());
            for v in self.ff.iter_mut() {
                *v = v.max(0.0);
            }
            row_matmul_into(&self.ff, m.store.value(layer.ff.w2), &mut self.tmp_d);
            add_assign(&mut self.tmp_d, m.store.value(layer.ff.b2).as_slice());
            add_assign(&mut self.x, &self.tmp_d);
        }
        layer_norm_row(
            &self.x,
            m.store.value(m.final_ln.gain).as_slice(),
            m.store.value(m.final_ln.bias).as_slice(),
            &mut self.xn,
        );
        project_logits_row(
            &self.xn,
            m.store.value(m.w_out),
            &self.wt,
            m.store.value(m.b_out).as_slice(),
            &mut self.logits,
        );
        self.len += 1;
        &self.logits
    }

    /// Feeds `tokens` at the next `tokens.len()` positions in **one**
    /// causal-masked multi-position pass and returns their logits rows,
    /// flattened (`tokens.len() × vocab`, row `i` for `tokens[i]`).
    ///
    /// Bit-identical to calling [`DecodeState::step`] once per token: the
    /// batched projections reuse [`batch_row_matmul_into`] (per-row
    /// bit-identical to the single-row kernel), K/V rows are appended in
    /// position order, and each position attends only over its causal prefix
    /// of the shared cache — later rows exist but are never read, exactly as
    /// the graph path's `-1e9` mask zeroes them out. This is the verify pass
    /// of speculative decoding and the one-pass prompt prefill for forced
    /// scoring; per-position cost amortizes every weight read over the chunk.
    ///
    /// # Panics
    /// Panics if the chunk would run past `max_len`.
    pub fn step_many(&mut self, tokens: &[usize]) -> &[f32] {
        let m = self.model;
        let d = m.cfg.d_model;
        let n_heads = m.cfg.n_heads;
        let dh = d / n_heads;
        let vocab = m.cfg.vocab;
        let scale = 1.0 / (dh as f32).sqrt();
        let t = tokens.len();
        assert!(self.len + t <= m.cfg.max_len, "decode past max_len");
        self.many.ensure(t, d, dh, m.cfg.d_ff, vocab);
        let len_before = self.len;
        // Token + positional embedding per position.
        let tok = m.store.value(m.tok_emb);
        let pos_t = m.store.value(m.pos_emb);
        for (i, &token) in tokens.iter().enumerate() {
            let te = tok.row(token);
            let pe = pos_t.row((len_before + i).min(m.cfg.max_len - 1));
            let x = &mut self.many.x[i * d..(i + 1) * d];
            for c in 0..d {
                x[c] = te[c] + pe[c];
            }
        }
        for (l, layer) in m.dec_layers.iter().enumerate() {
            // Self-attention: project and append ALL chunk K/V rows first
            // (row j depends only on its own input), then attend each
            // position over its own causal prefix `len_before + i + 1`.
            for &i in &self.many.ids {
                layer_norm_row(
                    &self.many.x[i * d..(i + 1) * d],
                    m.store.value(layer.ln1.gain).as_slice(),
                    m.store.value(layer.ln1.bias).as_slice(),
                    &mut self.many.xn[i * d..(i + 1) * d],
                );
            }
            for h in 0..n_heads {
                batch_row_matmul_into(
                    &self.many.ids,
                    &self.many.xn,
                    m.store.value(layer.self_attn.wq[h]),
                    &mut self.many.q,
                );
                batch_row_matmul_into(
                    &self.many.ids,
                    &self.many.xn,
                    m.store.value(layer.self_attn.wk[h]),
                    &mut self.many.kv_row,
                );
                for &i in &self.many.ids {
                    self.self_k[l][h].push_row(&self.many.kv_row[i * dh..(i + 1) * dh]);
                }
                batch_row_matmul_into(
                    &self.many.ids,
                    &self.many.xn,
                    m.store.value(layer.self_attn.wv[h]),
                    &mut self.many.kv_row,
                );
                for &i in &self.many.ids {
                    self.self_v[l][h].push_row(&self.many.kv_row[i * dh..(i + 1) * dh]);
                }
                for &i in &self.many.ids {
                    let (sk, sv) = (&self.self_k[l][h], &self.self_v[l][h]);
                    let t1 = len_before + i + 1;
                    let scores = &mut self.scores[..t1];
                    let q = &self.many.q[i * dh..(i + 1) * dh];
                    for (j, sc) in scores.iter_mut().enumerate() {
                        *sc = dot(q, sk.row(j)) * scale;
                    }
                    softmax_row(scores);
                    row_matmul_into(
                        scores,
                        sv,
                        &mut self.many.heads[i * d + h * dh..i * d + (h + 1) * dh],
                    );
                }
            }
            batch_row_matmul_into(
                &self.many.ids,
                &self.many.heads,
                m.store.value(layer.self_attn.wo),
                &mut self.many.tmp_d,
            );
            for &i in &self.many.ids {
                add_assign(
                    &mut self.many.x[i * d..(i + 1) * d],
                    &self.many.tmp_d[i * d..(i + 1) * d],
                );
            }
            // Cross-attention against the fixed encoder K/V.
            for &i in &self.many.ids {
                layer_norm_row(
                    &self.many.x[i * d..(i + 1) * d],
                    m.store.value(layer.ln2.gain).as_slice(),
                    m.store.value(layer.ln2.bias).as_slice(),
                    &mut self.many.xn[i * d..(i + 1) * d],
                );
            }
            for h in 0..n_heads {
                batch_row_matmul_into(
                    &self.many.ids,
                    &self.many.xn,
                    m.store.value(layer.cross_attn.wq[h]),
                    &mut self.many.q,
                );
                for &i in &self.many.ids {
                    let (ck, cv) = (&self.cross_k[l][h], &self.cross_v[l][h]);
                    let scores = &mut self.scores[..ck.rows];
                    let q = &self.many.q[i * dh..(i + 1) * dh];
                    for (j, sc) in scores.iter_mut().enumerate() {
                        *sc = dot(q, ck.row(j)) * scale;
                    }
                    softmax_row(scores);
                    row_matmul_into(
                        scores,
                        cv,
                        &mut self.many.heads[i * d + h * dh..i * d + (h + 1) * dh],
                    );
                }
            }
            batch_row_matmul_into(
                &self.many.ids,
                &self.many.heads,
                m.store.value(layer.cross_attn.wo),
                &mut self.many.tmp_d,
            );
            for &i in &self.many.ids {
                add_assign(
                    &mut self.many.x[i * d..(i + 1) * d],
                    &self.many.tmp_d[i * d..(i + 1) * d],
                );
            }
            // Feed-forward.
            for &i in &self.many.ids {
                layer_norm_row(
                    &self.many.x[i * d..(i + 1) * d],
                    m.store.value(layer.ln3.gain).as_slice(),
                    m.store.value(layer.ln3.bias).as_slice(),
                    &mut self.many.xn[i * d..(i + 1) * d],
                );
            }
            let d_ff = m.cfg.d_ff;
            batch_row_matmul_into(
                &self.many.ids,
                &self.many.xn,
                m.store.value(layer.ff.w1),
                &mut self.many.ff,
            );
            for &i in &self.many.ids {
                let ff = &mut self.many.ff[i * d_ff..(i + 1) * d_ff];
                add_assign(ff, m.store.value(layer.ff.b1).as_slice());
                for v in ff.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            batch_row_matmul_into(
                &self.many.ids,
                &self.many.ff,
                m.store.value(layer.ff.w2),
                &mut self.many.tmp_d,
            );
            for &i in &self.many.ids {
                let tmp = &mut self.many.tmp_d[i * d..(i + 1) * d];
                add_assign(tmp, m.store.value(layer.ff.b2).as_slice());
            }
            for &i in &self.many.ids {
                add_assign(
                    &mut self.many.x[i * d..(i + 1) * d],
                    &self.many.tmp_d[i * d..(i + 1) * d],
                );
            }
        }
        for &i in &self.many.ids {
            layer_norm_row(
                &self.many.x[i * d..(i + 1) * d],
                m.store.value(m.final_ln.gain).as_slice(),
                m.store.value(m.final_ln.bias).as_slice(),
                &mut self.many.xn[i * d..(i + 1) * d],
            );
        }
        project_logits_rows(
            &self.many.ids,
            &self.many.xn,
            m.store.value(m.w_out),
            &self.wt,
            m.store.value(m.b_out).as_slice(),
            &mut self.many.logits,
        );
        self.len += t;
        &self.many.logits[..t * vocab]
    }

    /// Rolls the session back to `len` fed tokens, popping the newer
    /// self-attention K/V rows in every layer and head — how speculative
    /// decoding discards positions whose input tokens the verifier rejected.
    /// Scratch and the fixed cross-attention K/V are untouched; re-feeding
    /// over the popped rows reproduces the sequential path bit for bit (and
    /// reuses the retained cache capacity).
    ///
    /// # Panics
    /// Panics if `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len, "truncate beyond current length");
        for layer in self.self_k.iter_mut().chain(self.self_v.iter_mut()) {
            for cache in layer.iter_mut() {
                cache.truncate_rows(len);
            }
        }
        self.len = len;
    }
}

// ---------------------------------------------------------------------------
// GRU fast path
// ---------------------------------------------------------------------------

impl GruSeq2Seq {
    /// Starts an incremental GRU decode over `src` (clamped to `max_len`):
    /// runs the encoder once and seeds the decoder hidden state, which is
    /// then carried across [`GruDecodeState::step`] calls instead of being
    /// recomputed from scratch per token on a fresh graph.
    pub fn begin_decode(&self, src: &[usize]) -> GruDecodeState<'_> {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let d = self.cfg.d_model;
        let mut st = GruDecodeState {
            model: self,
            wt: self.out_proj_t(),
            h: vec![0.0; d],
            xin: vec![0.0; 2 * d],
            z: vec![0.0; d],
            r: vec![0.0; d],
            hcand: vec![0.0; d],
            rh: vec![0.0; d],
            logits: vec![0.0; self.cfg.vocab],
        };
        let emb = self.store.value(self.emb);
        for &id in src {
            st.cell_fwd(&self.enc, emb.row(id));
        }
        st
    }

    /// Incremental forced decode for the GRU (see
    /// [`Transformer::forced_steps`]).
    pub fn forced_steps(&self, src: &[usize], feed: &[usize]) -> Vec<usize> {
        let feed = &feed[..feed.len().min(self.cfg.max_len)];
        let mut st = self.begin_decode(src);
        feed.iter()
            .map(|&t| crate::seq2seq::argmax(st.step(t)).unwrap_or(0))
            .collect()
    }
}

/// Incremental decoder state for a [`GruSeq2Seq`]: the recurrent hidden
/// state plus reusable gate scratch. Create with
/// [`GruSeq2Seq::begin_decode`], advance with [`GruDecodeState::step`].
pub struct GruDecodeState<'m> {
    model: &'m GruSeq2Seq,
    /// Pre-transposed output projection, snapshotted like `DecodeState`'s.
    wt: Arc<Tensor>,
    h: Vec<f32>,
    xin: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    hcand: Vec<f32>,
    rh: Vec<f32>,
    logits: Vec<f32>,
}

impl GruDecodeState<'_> {
    /// One GRU cell update `h ← cell(x, h)`, replaying the graph path's
    /// `cell_step` op sequence bit for bit.
    fn cell_fwd(&mut self, cell: &GruCell, x: &[f32]) {
        let m = self.model;
        let d = m.cfg.d_model;
        self.xin[..d].copy_from_slice(x);
        self.xin[d..].copy_from_slice(&self.h);
        row_matmul_into(&self.xin, m.store.value(cell.wz), &mut self.z);
        add_assign(&mut self.z, m.store.value(cell.bz).as_slice());
        for v in self.z.iter_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        row_matmul_into(&self.xin, m.store.value(cell.wr), &mut self.r);
        add_assign(&mut self.r, m.store.value(cell.br).as_slice());
        for v in self.r.iter_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        for i in 0..d {
            self.rh[i] = self.r[i] * self.h[i];
        }
        self.xin[..d].copy_from_slice(x);
        self.xin[d..].copy_from_slice(&self.rh);
        row_matmul_into(&self.xin, m.store.value(cell.wh), &mut self.hcand);
        add_assign(&mut self.hcand, m.store.value(cell.bh).as_slice());
        for v in self.hcand.iter_mut() {
            *v = v.tanh();
        }
        // h' = (1 - z) ⊙ h + z ⊙ ĥ, associated exactly as the graph ops are:
        // keep = (−z + 1) ⊙ h, new = z ⊙ ĥ, h' = keep + new.
        for i in 0..d {
            let keep = (self.z[i] * -1.0 + 1.0) * self.h[i];
            let new = self.z[i] * self.hcand[i];
            self.h[i] = keep + new;
        }
    }

    /// Feeds `token` through the decoder cell and returns its logits row —
    /// bit-identical to the last row of the graph path's full-prefix decode.
    pub fn step(&mut self, token: usize) -> &[f32] {
        let m = self.model;
        let emb = m.store.value(m.emb);
        let x: Vec<f32> = emb.row(token).to_vec();
        self.cell_fwd(&m.dec, &x);
        project_logits_row(
            &self.h,
            m.store.value(m.w_out),
            &self.wt,
            m.store.value(m.b_out).as_slice(),
            &mut self.logits,
        );
        &self.logits
    }

    /// Snapshots the recurrent hidden state. With [`GruDecodeState::restore`]
    /// this is the GRU's whole-state rollback: the speculative driver saves
    /// before advancing the draft past unverified tokens and restores to the
    /// last verified position on a mismatch (the recurrent analog of
    /// [`DecodeState::truncate`]).
    pub fn save(&self) -> Vec<f32> {
        self.h.clone()
    }

    /// Restores a snapshot taken by [`GruDecodeState::save`].
    ///
    /// # Panics
    /// Panics if `h` was saved from a different width.
    pub fn restore(&mut self, h: &[f32]) {
        self.h.copy_from_slice(h);
    }
}

// ---------------------------------------------------------------------------
// Batched decode (N sessions in lockstep through shared weights)
// ---------------------------------------------------------------------------

/// Batched row matmul: for every slot `s` in `slots`,
/// `out[s] = a[s] · b`, where `a` holds one row per slot at stride `b.rows`
/// and `out` one row per slot at stride `b.cols`.
///
/// The loop nest is k-blocked: weight rows are streamed sequentially (so the
/// hardware prefetcher sees one linear pass over the matrix per step) in
/// blocks of [`K_TILE`], and inside a block every slot consumes all
/// [`K_TILE`] rows while they are cache-hot — the weight bytes cross the
/// cache hierarchy **once** per step for the whole batch instead of once
/// per session, which is what amortizes weight reads N× over a batch. When
/// a slot's [`K_TILE`] activations are all nonzero the fused path folds all
/// eight rank-1 updates into one pass over the output row (eight FMAs per
/// load/store instead of one); otherwise the per-k path applies exactly the
/// nonzero terms.
///
/// Per slot, the accumulation into any output element is element-by-element
/// in ascending `k` with the exact zero-skip (the fused [`Kernel::fma_tile`]
/// path's `+=` chain is the same rounding sequence), i.e. bit-identical to
/// [`row_matmul_into`] on that slot's row alone; blocking only reorders
/// work *across* slots, and no f32 op mixes slots.
fn batch_row_matmul_into(slots: &[usize], a: &[f32], b: &Tensor, out: &mut [f32]) {
    let (kdim, odim) = (b.rows, b.cols);
    for &s in slots {
        out[s * odim..(s + 1) * odim].fill(0.0);
    }
    with_kernel!(kr => {
        let mut kb = 0;
        while kb + K_TILE <= kdim {
            let rows: [&[f32]; K_TILE] = std::array::from_fn(|t| b.row(kb + t));
            for &s in slots {
                let avs: [f32; K_TILE] = std::array::from_fn(|t| a[s * kdim + kb + t]);
                let orow = &mut out[s * odim..(s + 1) * odim];
                if avs.iter().all(|&av| av != 0.0) {
                    kr.fma_tile(&avs, &rows, orow);
                } else {
                    for (&av, row) in avs.iter().zip(rows.iter()) {
                        if av == 0.0 {
                            continue;
                        }
                        kr.axpy(av, row, orow);
                    }
                }
            }
            kb += K_TILE;
        }
        // Tail rows (kdim % K_TILE), per-k like the plain row kernel.
        for k in kb..kdim {
            let brow = b.row(k);
            for &s in slots {
                let av = a[s * kdim + k];
                if av == 0.0 {
                    continue;
                }
                kr.axpy(av, brow, &mut out[s * odim..(s + 1) * odim]);
            }
        }
    });
}

/// A fixed-capacity batch of independent incremental decode sessions that
/// step in lockstep through shared weights.
///
/// Sessions occupy *slots* (`0..capacity`). [`BatchDecode::join`] starts a
/// session in a free slot, [`BatchDecode::step`] advances any subset of
/// active slots by one token each (one shared pass over every weight
/// matrix), and [`BatchDecode::retire`] frees a slot — immediately, at any
/// point, so finished sessions leave the batch at a token boundary without
/// barriers. Per-slot K/V state is private to the slot; ragged lengths need
/// no masks because attention runs against each slot's own cache.
///
/// The contract shared by both implementations ([`BatchDecodeState`],
/// [`GruBatchDecodeState`]): the logits produced for a slot are
/// **bit-identical** to a single-session [`DecodeState`] /
/// [`GruDecodeState`] fed the same source and token stream, at every batch
/// size and join/retire order.
pub trait BatchDecode {
    /// Total slot count.
    fn capacity(&self) -> usize;

    /// Currently occupied slot count.
    fn active(&self) -> usize;

    /// Starts a session over `src` (clamped to the model's `max_len`) in a
    /// free slot and returns its slot id; `None` when the batch is full.
    fn join(&mut self, src: &[usize]) -> Option<usize>;

    /// Frees `slot` (dropping its K/V state). No-op if already free.
    fn retire(&mut self, slot: usize);

    /// Advances each `(slot, token)` in `feeds` by one position in one
    /// shared weight pass. Slots not listed do not advance.
    ///
    /// # Panics
    /// Panics if a fed slot is free, is listed twice, or is at `max_len`.
    fn step(&mut self, feeds: &[(usize, usize)]);

    /// The logits row produced for `slot` by the most recent step that fed
    /// it.
    fn logits(&self, slot: usize) -> &[f32];

    /// Tokens fed to `slot` so far.
    fn slot_len(&self, slot: usize) -> usize;
}

/// Asserts `feeds` is a valid step: no duplicate slots (`seen` is a
/// scratch bitmap of at least `capacity` bools, reset here).
fn check_feeds(feeds: &[(usize, usize)], seen: &mut [bool]) {
    seen.fill(false);
    for &(s, _) in feeds {
        assert!(!seen[s], "slot {s} fed twice in one step");
        seen[s] = true;
    }
}

/// Per-slot state of a transformer batch session: the same cross-attention
/// projections and self-attention caches a [`DecodeState`] holds, minus the
/// shared scratch (which lives once per batch, not per slot).
struct TfSlot {
    cross_k: Vec<Vec<Tensor>>,
    cross_v: Vec<Vec<Tensor>>,
    self_k: Vec<Vec<Tensor>>,
    self_v: Vec<Vec<Tensor>>,
    len: usize,
}

/// Batched incremental decoder for a [`Transformer`]: N sessions share one
/// pass over every weight matrix per step (see [`batch_row_matmul_into`])
/// while keeping per-slot K/V caches. Create with
/// [`Transformer::begin_batch_decode`]; drive through the [`BatchDecode`]
/// trait.
pub struct BatchDecodeState<'m> {
    model: &'m Transformer,
    /// Pre-transposed output projection, snapshotted once per batch.
    wt: Arc<Tensor>,
    slots: Vec<Option<TfSlot>>,
    occupied: usize,
    // Shared scratch, one row per slot (flat, stride = row width).
    x: Vec<f32>,
    xn: Vec<f32>,
    q: Vec<f32>,
    kv_row: Vec<f32>,
    scores: Vec<f32>,
    heads: Vec<f32>,
    tmp_d: Vec<f32>,
    ff: Vec<f32>,
    logits: Vec<f32>,
    seen: Vec<bool>,
}

impl Transformer {
    /// Starts an empty batch of `capacity` incremental decode slots. Scratch
    /// is allocated once here; joins allocate only per-slot K/V state.
    pub fn begin_batch_decode(&self, capacity: usize) -> BatchDecodeState<'_> {
        let cap = capacity.max(1);
        let d = self.cfg.d_model;
        let dh = d / self.cfg.n_heads;
        BatchDecodeState {
            model: self,
            wt: self.out_proj_t(),
            slots: (0..cap).map(|_| None).collect(),
            occupied: 0,
            x: vec![0.0; cap * d],
            xn: vec![0.0; cap * d],
            q: vec![0.0; cap * dh],
            kv_row: vec![0.0; cap * dh],
            scores: vec![0.0; cap * self.cfg.max_len],
            heads: vec![0.0; cap * d],
            tmp_d: vec![0.0; cap * d],
            ff: vec![0.0; cap * self.cfg.d_ff],
            logits: vec![0.0; cap * self.cfg.vocab],
            seen: vec![false; cap],
        }
    }
}

impl BatchDecode for BatchDecodeState<'_> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn active(&self) -> usize {
        self.occupied
    }

    fn join(&mut self, src: &[usize]) -> Option<usize> {
        let s = self.slots.iter().position(Option::is_none)?;
        // `begin_decode` runs the encoder and projects cross K/V exactly as
        // the single path does; the batch adopts its per-session state and
        // discards the single-session scratch.
        let st = self.model.begin_decode(src);
        self.slots[s] = Some(TfSlot {
            cross_k: st.cross_k,
            cross_v: st.cross_v,
            self_k: st.self_k,
            self_v: st.self_v,
            len: 0,
        });
        self.occupied += 1;
        Some(s)
    }

    fn retire(&mut self, slot: usize) {
        if self.slots[slot].take().is_some() {
            self.occupied -= 1;
        }
    }

    fn step(&mut self, feeds: &[(usize, usize)]) {
        let m = self.model;
        let d = m.cfg.d_model;
        let n_heads = m.cfg.n_heads;
        let dh = d / n_heads;
        let max_len = m.cfg.max_len;
        let scale = 1.0 / (dh as f32).sqrt();
        check_feeds(feeds, &mut self.seen);
        let ids: Vec<usize> = feeds.iter().map(|&(s, _)| s).collect();
        // Token + positional embedding per slot.
        let tok = m.store.value(m.tok_emb);
        let pos_t = m.store.value(m.pos_emb);
        for &(s, token) in feeds {
            let slot = self.slots[s].as_ref().expect("step on a free slot");
            assert!(slot.len < max_len, "decode past max_len");
            let te = tok.row(token);
            let pe = pos_t.row(slot.len.min(max_len - 1));
            let x = &mut self.x[s * d..(s + 1) * d];
            for c in 0..d {
                x[c] = te[c] + pe[c];
            }
        }
        for (l, layer) in m.dec_layers.iter().enumerate() {
            // Self-attention over each slot's cached prefix plus this row.
            for &s in &ids {
                layer_norm_row(
                    &self.x[s * d..(s + 1) * d],
                    m.store.value(layer.ln1.gain).as_slice(),
                    m.store.value(layer.ln1.bias).as_slice(),
                    &mut self.xn[s * d..(s + 1) * d],
                );
            }
            for h in 0..n_heads {
                batch_row_matmul_into(
                    &ids,
                    &self.xn,
                    m.store.value(layer.self_attn.wq[h]),
                    &mut self.q,
                );
                batch_row_matmul_into(
                    &ids,
                    &self.xn,
                    m.store.value(layer.self_attn.wk[h]),
                    &mut self.kv_row,
                );
                for &s in &ids {
                    let slot = self.slots[s].as_mut().expect("active slot");
                    slot.self_k[l][h].push_row(&self.kv_row[s * dh..(s + 1) * dh]);
                }
                batch_row_matmul_into(
                    &ids,
                    &self.xn,
                    m.store.value(layer.self_attn.wv[h]),
                    &mut self.kv_row,
                );
                for &s in &ids {
                    let slot = self.slots[s].as_mut().expect("active slot");
                    slot.self_v[l][h].push_row(&self.kv_row[s * dh..(s + 1) * dh]);
                }
                for &s in &ids {
                    let slot = self.slots[s].as_ref().expect("active slot");
                    let (sk, sv) = (&slot.self_k[l][h], &slot.self_v[l][h]);
                    let t1 = sk.rows;
                    let scores = &mut self.scores[s * max_len..s * max_len + t1];
                    let q = &self.q[s * dh..(s + 1) * dh];
                    for (j, sc) in scores.iter_mut().enumerate() {
                        *sc = dot(q, sk.row(j)) * scale;
                    }
                    softmax_row(scores);
                    row_matmul_into(
                        scores,
                        sv,
                        &mut self.heads[s * d + h * dh..s * d + (h + 1) * dh],
                    );
                }
            }
            batch_row_matmul_into(
                &ids,
                &self.heads,
                m.store.value(layer.self_attn.wo),
                &mut self.tmp_d,
            );
            for &s in &ids {
                add_assign(
                    &mut self.x[s * d..(s + 1) * d],
                    &self.tmp_d[s * d..(s + 1) * d],
                );
            }
            // Cross-attention against each slot's fixed encoder K/V.
            for &s in &ids {
                layer_norm_row(
                    &self.x[s * d..(s + 1) * d],
                    m.store.value(layer.ln2.gain).as_slice(),
                    m.store.value(layer.ln2.bias).as_slice(),
                    &mut self.xn[s * d..(s + 1) * d],
                );
            }
            for h in 0..n_heads {
                batch_row_matmul_into(
                    &ids,
                    &self.xn,
                    m.store.value(layer.cross_attn.wq[h]),
                    &mut self.q,
                );
                for &s in &ids {
                    let slot = self.slots[s].as_ref().expect("active slot");
                    let (ck, cv) = (&slot.cross_k[l][h], &slot.cross_v[l][h]);
                    let scores = &mut self.scores[s * max_len..s * max_len + ck.rows];
                    let q = &self.q[s * dh..(s + 1) * dh];
                    for (j, sc) in scores.iter_mut().enumerate() {
                        *sc = dot(q, ck.row(j)) * scale;
                    }
                    softmax_row(scores);
                    row_matmul_into(
                        scores,
                        cv,
                        &mut self.heads[s * d + h * dh..s * d + (h + 1) * dh],
                    );
                }
            }
            batch_row_matmul_into(
                &ids,
                &self.heads,
                m.store.value(layer.cross_attn.wo),
                &mut self.tmp_d,
            );
            for &s in &ids {
                add_assign(
                    &mut self.x[s * d..(s + 1) * d],
                    &self.tmp_d[s * d..(s + 1) * d],
                );
            }
            // Feed-forward.
            for &s in &ids {
                layer_norm_row(
                    &self.x[s * d..(s + 1) * d],
                    m.store.value(layer.ln3.gain).as_slice(),
                    m.store.value(layer.ln3.bias).as_slice(),
                    &mut self.xn[s * d..(s + 1) * d],
                );
            }
            let d_ff = m.cfg.d_ff;
            batch_row_matmul_into(&ids, &self.xn, m.store.value(layer.ff.w1), &mut self.ff);
            for &s in &ids {
                let ff = &mut self.ff[s * d_ff..(s + 1) * d_ff];
                add_assign(ff, m.store.value(layer.ff.b1).as_slice());
                for v in ff.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            batch_row_matmul_into(&ids, &self.ff, m.store.value(layer.ff.w2), &mut self.tmp_d);
            for &s in &ids {
                let tmp = &mut self.tmp_d[s * d..(s + 1) * d];
                add_assign(tmp, m.store.value(layer.ff.b2).as_slice());
            }
            for &s in &ids {
                add_assign(
                    &mut self.x[s * d..(s + 1) * d],
                    &self.tmp_d[s * d..(s + 1) * d],
                );
            }
        }
        for &s in &ids {
            layer_norm_row(
                &self.x[s * d..(s + 1) * d],
                m.store.value(m.final_ln.gain).as_slice(),
                m.store.value(m.final_ln.bias).as_slice(),
                &mut self.xn[s * d..(s + 1) * d],
            );
        }
        project_logits_rows(
            &ids,
            &self.xn,
            m.store.value(m.w_out),
            &self.wt,
            m.store.value(m.b_out).as_slice(),
            &mut self.logits,
        );
        for &s in &ids {
            self.slots[s].as_mut().expect("active slot").len += 1;
        }
    }

    fn logits(&self, slot: usize) -> &[f32] {
        assert!(self.slots[slot].is_some(), "logits of a free slot");
        let vocab = self.model.cfg.vocab;
        &self.logits[slot * vocab..(slot + 1) * vocab]
    }

    fn slot_len(&self, slot: usize) -> usize {
        self.slots[slot].as_ref().map_or(0, |s| s.len)
    }
}

/// Per-slot state of a GRU batch session: just the recurrent hidden vector
/// (held in the batch's flat `h` buffer) and its length.
struct GruSlot {
    len: usize,
}

/// Batched incremental decoder for a [`GruSeq2Seq`]; the GRU analog of
/// [`BatchDecodeState`]. Create with [`GruSeq2Seq::begin_batch_decode`].
pub struct GruBatchDecodeState<'m> {
    model: &'m GruSeq2Seq,
    /// Pre-transposed output projection, snapshotted once per batch.
    wt: Arc<Tensor>,
    slots: Vec<Option<GruSlot>>,
    occupied: usize,
    /// Hidden states, one row of width `d_model` per slot.
    h: Vec<f32>,
    // Shared scratch, one row per slot.
    x: Vec<f32>,
    xin: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    hcand: Vec<f32>,
    rh: Vec<f32>,
    logits: Vec<f32>,
    seen: Vec<bool>,
}

impl GruSeq2Seq {
    /// Starts an empty batch of `capacity` incremental GRU decode slots.
    pub fn begin_batch_decode(&self, capacity: usize) -> GruBatchDecodeState<'_> {
        let cap = capacity.max(1);
        let d = self.cfg.d_model;
        GruBatchDecodeState {
            model: self,
            wt: self.out_proj_t(),
            slots: (0..cap).map(|_| None).collect(),
            occupied: 0,
            h: vec![0.0; cap * d],
            x: vec![0.0; cap * d],
            xin: vec![0.0; cap * 2 * d],
            z: vec![0.0; cap * d],
            r: vec![0.0; cap * d],
            hcand: vec![0.0; cap * d],
            rh: vec![0.0; cap * d],
            logits: vec![0.0; cap * self.cfg.vocab],
            seen: vec![false; cap],
        }
    }
}

impl BatchDecode for GruBatchDecodeState<'_> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn active(&self) -> usize {
        self.occupied
    }

    fn join(&mut self, src: &[usize]) -> Option<usize> {
        let s = self.slots.iter().position(Option::is_none)?;
        let d = self.model.cfg.d_model;
        // The single-session path runs the encoder bit-for-bit; adopt its
        // seeded hidden state.
        let st = self.model.begin_decode(src);
        self.h[s * d..(s + 1) * d].copy_from_slice(&st.h);
        self.slots[s] = Some(GruSlot { len: 0 });
        self.occupied += 1;
        Some(s)
    }

    fn retire(&mut self, slot: usize) {
        if self.slots[slot].take().is_some() {
            self.occupied -= 1;
        }
    }

    fn step(&mut self, feeds: &[(usize, usize)]) {
        let m = self.model;
        let d = m.cfg.d_model;
        check_feeds(feeds, &mut self.seen);
        let ids: Vec<usize> = feeds.iter().map(|&(s, _)| s).collect();
        let emb = m.store.value(m.emb);
        for &(s, token) in feeds {
            assert!(self.slots[s].is_some(), "step on a free slot");
            self.x[s * d..(s + 1) * d].copy_from_slice(emb.row(token));
        }
        // One decoder cell update per slot, phase-batched: each weight
        // matrix is read once for all slots, each slot's f32 sequence is
        // exactly `GruDecodeState::cell_fwd`.
        let cell = &m.dec;
        for &s in &ids {
            self.xin[s * 2 * d..s * 2 * d + d].copy_from_slice(&self.x[s * d..(s + 1) * d]);
            self.xin[s * 2 * d + d..(s + 1) * 2 * d].copy_from_slice(&self.h[s * d..(s + 1) * d]);
        }
        batch_row_matmul_into(&ids, &self.xin, m.store.value(cell.wz), &mut self.z);
        for &s in &ids {
            let z = &mut self.z[s * d..(s + 1) * d];
            add_assign(z, m.store.value(cell.bz).as_slice());
            for v in z.iter_mut() {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
        batch_row_matmul_into(&ids, &self.xin, m.store.value(cell.wr), &mut self.r);
        for &s in &ids {
            let r = &mut self.r[s * d..(s + 1) * d];
            add_assign(r, m.store.value(cell.br).as_slice());
            for v in r.iter_mut() {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
        for &s in &ids {
            for i in 0..d {
                self.rh[s * d + i] = self.r[s * d + i] * self.h[s * d + i];
            }
            self.xin[s * 2 * d + d..(s + 1) * 2 * d].copy_from_slice(&self.rh[s * d..(s + 1) * d]);
        }
        batch_row_matmul_into(&ids, &self.xin, m.store.value(cell.wh), &mut self.hcand);
        for &s in &ids {
            let hc = &mut self.hcand[s * d..(s + 1) * d];
            add_assign(hc, m.store.value(cell.bh).as_slice());
            for v in hc.iter_mut() {
                *v = v.tanh();
            }
        }
        for &s in &ids {
            for i in 0..d {
                let keep = (self.z[s * d + i] * -1.0 + 1.0) * self.h[s * d + i];
                let new = self.z[s * d + i] * self.hcand[s * d + i];
                self.h[s * d + i] = keep + new;
            }
        }
        project_logits_rows(
            &ids,
            &self.h,
            m.store.value(m.w_out),
            &self.wt,
            m.store.value(m.b_out).as_slice(),
            &mut self.logits,
        );
        for &s in &ids {
            self.slots[s].as_mut().expect("active slot").len += 1;
        }
    }

    fn logits(&self, slot: usize) -> &[f32] {
        assert!(self.slots[slot].is_some(), "logits of a free slot");
        let vocab = self.model.cfg.vocab;
        &self.logits[slot * vocab..(slot + 1) * vocab]
    }

    fn slot_len(&self, slot: usize) -> usize {
        self.slots[slot].as_ref().map_or(0, |s| s.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_matmul_matches_tensor_matmul_bitwise() {
        let a = Tensor::from_vec(1, 4, vec![0.5, 0.0, -1.25, 2.0]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.3 - 1.0).collect());
        let full = a.matmul(&b, false);
        let mut out = vec![0.0f32; 3];
        row_matmul_into(a.row(0), &b, &mut out);
        for (x, y) in out.iter().zip(full.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn softmax_row_matches_tensor_softmax_bitwise() {
        let t = Tensor::from_vec(1, 5, vec![0.1, -2.0, 3.5, 0.0, 1.0]);
        let full = t.softmax_rows();
        let mut row = t.as_slice().to_vec();
        softmax_row(&mut row);
        for (x, y) in row.iter().zip(full.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn masked_softmax_prefix_is_exact() {
        // The graph path softmaxes the full row with -1e9 added to masked
        // lanes; the fast path softmaxes only the prefix. The masked lanes
        // must underflow to exactly zero for the two to agree.
        let scores = [0.3f32, -1.2, 0.9];
        let mut masked: Vec<f32> = scores.to_vec();
        masked.extend([0.4f32 + -1e9, -0.7 + -1e9]);
        softmax_row(&mut masked);
        let mut prefix = scores.to_vec();
        softmax_row(&mut prefix);
        for (x, y) in prefix.iter().zip(&masked) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(masked[3], 0.0);
        assert_eq!(masked[4], 0.0);
    }

    #[test]
    fn batch_row_matmul_matches_scalar_kernel_bitwise() {
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.3 - 1.0).collect());
        // Three slot rows at stride 4, one containing zeros (zero-skip path).
        let a = vec![
            0.5, 0.0, -1.25, 2.0, // slot 0
            -0.1, 0.2, 0.3, -0.4, // slot 1
            0.0, 0.0, 1.5, 0.0, // slot 2
        ];
        let mut batched = vec![7.0f32; 3 * 3];
        batch_row_matmul_into(&[2, 0, 1], &a, &b, &mut batched);
        for s in 0..3 {
            let mut single = vec![0.0f32; 3];
            row_matmul_into(&a[s * 4..(s + 1) * 4], &b, &mut single);
            for (x, y) in batched[s * 3..(s + 1) * 3].iter().zip(&single) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn transformer_batch_step_matches_single_bitwise() {
        use crate::{Seq2Seq, Transformer, TransformerConfig};
        let mut m = Transformer::new(TransformerConfig::tiny(10));
        for _ in 0..5 {
            m.train_example(&[2, 3, 4], &[3, 4], 0, 1);
            m.step(3e-3);
        }
        let srcs: [&[usize]; 3] = [&[2, 3, 4], &[4, 2], &[3]];
        let mut batch = m.begin_batch_decode(4);
        let mut singles: Vec<DecodeState> = srcs.iter().map(|s| m.begin_decode(s)).collect();
        let slots: Vec<usize> = srcs.iter().map(|s| batch.join(s).unwrap()).collect();
        for step in 0..4 {
            let feeds: Vec<(usize, usize)> = slots.iter().map(|&s| (s, step + 1)).collect();
            batch.step(&feeds);
            for (i, st) in singles.iter_mut().enumerate() {
                let want = st.step(step + 1);
                let got = batch.logits(slots[i]);
                for (x, y) in got.iter().zip(want) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn gru_batch_step_matches_single_bitwise() {
        use crate::{GruConfig, GruSeq2Seq, Seq2Seq};
        let mut m = GruSeq2Seq::new(GruConfig::tiny(8));
        for _ in 0..5 {
            m.train_example(&[2, 3], &[3, 2], 0, 1);
            m.step(3e-3);
        }
        let srcs: [&[usize]; 2] = [&[2, 3], &[3]];
        let mut batch = m.begin_batch_decode(2);
        let mut singles: Vec<GruDecodeState> = srcs.iter().map(|s| m.begin_decode(s)).collect();
        let slots: Vec<usize> = srcs.iter().map(|s| batch.join(s).unwrap()).collect();
        for step in 0..3 {
            let feeds: Vec<(usize, usize)> = slots.iter().map(|&s| (s, step + 2)).collect();
            batch.step(&feeds);
            for (i, st) in singles.iter_mut().enumerate() {
                let want = st.step(step + 2);
                let got = batch.logits(slots[i]);
                for (x, y) in got.iter().zip(want) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
