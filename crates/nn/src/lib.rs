//! `vega-nn`: the neural substrate for CodeBE.
//!
//! A self-contained, dependency-light deep-learning stack sized for one CPU
//! core: dense [`Tensor`]s, a reverse-mode autograd tape ([`Graph`]) whose
//! backward rules are verified against finite differences, Adam
//! ([`ParamStore::adam_step`]), an encoder–decoder [`Transformer`] (the
//! architecture behind the paper's UniXcoder-based CodeBE), and a
//! [`GruSeq2Seq`] baseline for the RNN ablation. Both models implement
//! [`Seq2Seq`] and serialize to JSON.
//!
//! Generation runs on a forward-only fast path ([`DecodeState`] /
//! [`GruDecodeState`], see the [`mod@decode`] module docs) that caches
//! per-layer attention K/V and is bit-identical to the autograd-graph
//! reference decode. [`speculative_greedy`] layers exact speculative
//! decoding on top: a [`GruSeq2Seq`] drafts tokens and the transformer
//! verifies them in one multi-position pass ([`DecodeState::step_many`]),
//! emitting the same bit-identical stream in fewer forward passes.
//!
//! Every hot inner loop dispatches through the [`mod@kernel`] tier: a
//! [`Kernel`] trait with a scalar reference implementation and a
//! runtime-detected AVX2 implementation, selected by `VEGA_KERNEL`
//! (`auto` | `scalar` | `avx2`). Each mode is individually deterministic;
//! see the module docs for the cross-mode tolerance contract.
//!
//! # Examples
//! ```
//! use vega_nn::{Seq2Seq, Transformer, TransformerConfig};
//! let mut model = Transformer::new(TransformerConfig::tiny(10));
//! // Teach the model to echo [2, 3].
//! for _ in 0..30 {
//!     model.train_example(&[2, 3], &[2, 3], 0, 1);
//!     model.step(3e-3);
//! }
//! let out = model.greedy(&[2, 3], 0, 1, 8);
//! assert!(out.len() <= 8);
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the storage module opts back in for the
// mmap/reinterpretation primitives, and the kernel module for its
// `#[target_feature]` SIMD implementations (nothing else does).
#![deny(unsafe_code)]

pub mod decode;
mod graph;
mod gru;
pub mod kernel;
mod params;
mod seq2seq;
pub mod speculate;
pub mod storage;
mod tensor;
mod transformer;

pub use decode::{BatchDecode, BatchDecodeState, DecodeState, GruBatchDecodeState, GruDecodeState};
pub use graph::{Graph, NodeId};
pub use gru::{GruConfig, GruSeq2Seq};
pub use kernel::{Isa, Kernel, KernelMode};
pub use params::{Init, ParamId, ParamStore};
pub use seq2seq::{argmax, looks_degenerate, train_until, Seq2Seq};
pub use speculate::{speculative_greedy, SpecReport};
pub use storage::{ByteRegion, TensorTable};
pub use tensor::Tensor;
pub use transformer::{Transformer, TransformerConfig};
