//! JSON-lines trace exporter: one compact JSON object per line, written
//! with the hand-rolled [`crate::json`] writer (pure ASCII, so a line can
//! never contain a raw newline).

use crate::json::Json;
use crate::tracectx::TraceCtx;
use crate::State;

fn span_line(path: &str, start_us: u64, dur_us: u64, trace: Option<TraceCtx>) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::str("span")),
        ("path".to_string(), Json::str(path)),
        ("start_us".to_string(), Json::num_u64(start_us)),
        ("dur_us".to_string(), Json::num_u64(dur_us)),
    ];
    if let Some(t) = trace {
        fields.push(("trace".to_string(), Json::str(t.render())));
    }
    Json::Obj(fields)
}

pub(crate) fn render(state: &State) -> String {
    let mut lines: Vec<Json> = Vec::new();

    for rec in &state.span_records {
        lines.push(span_line(&rec.path, rec.start_us, rec.dur_us, rec.trace));
    }

    for ev in &state.events {
        lines.push(Json::obj([
            ("type", Json::str("event")),
            ("t_us", Json::num_u64(ev.t_us)),
            ("level", Json::str(ev.level.name())),
            ("msg", Json::str(&ev.msg)),
        ]));
    }

    for (name, v) in &state.counters {
        lines.push(Json::obj([
            ("type", Json::str("counter")),
            ("name", Json::str(name)),
            ("value", Json::num_u64(*v)),
        ]));
    }

    for (name, v) in &state.gauges {
        lines.push(Json::obj([
            ("type", Json::str("gauge")),
            ("name", Json::str(name)),
            ("value", Json::num_f64(*v)),
        ]));
    }

    for (name, h) in &state.hists {
        lines.push(Json::obj([
            ("type", Json::str("hist")),
            ("name", Json::str(name)),
            ("count", Json::num_u64(h.count())),
            ("sum", Json::num_f64(h.sum())),
            ("min", Json::num_f64(h.min())),
            ("max", Json::num_f64(h.max())),
            ("p50", Json::num_f64(h.quantile(0.5))),
            ("p90", Json::num_f64(h.quantile(0.9))),
            ("p99", Json::num_f64(h.quantile(0.99))),
            (
                "bounds",
                Json::Arr(
                    h.buckets()
                        .bounds()
                        .iter()
                        .map(|&b| Json::num_f64(b))
                        .collect(),
                ),
            ),
            (
                "counts",
                Json::Arr(h.counts().iter().map(|&c| Json::num_u64(c)).collect()),
            ),
        ]));
    }

    for (name, curve) in &state.curves {
        lines.push(Json::obj([
            ("type", Json::str("curve")),
            ("name", Json::str(name)),
            (
                "points",
                Json::Arr(
                    curve
                        .points
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("epoch", Json::num_usize(p.epoch)),
                                ("loss", Json::num_f32(p.loss)),
                                ("lr", Json::num_f32(p.lr)),
                                ("examples", Json::num_usize(p.examples)),
                                ("seconds", Json::num_f64(p.seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let mut out = String::new();
    for line in lines {
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::json::Json;
    use crate::{CurvePoint, Obs};

    #[test]
    fn every_line_parses_and_is_ascii() {
        let obs = Obs::with_level(Some(crate::Level::Trace));
        let _ = obs.span("pipeline.stage1").finish();
        obs.event(crate::Level::Info, "unicode: café → done\nsecond line");
        obs.counter_add("hits", 3);
        obs.gauge_set("temp", 1.25);
        obs.observe("lat", 0.5);
        obs.curve_point(
            "finetune",
            CurvePoint {
                epoch: 0,
                loss: 1.5,
                lr: 0.1,
                examples: 4,
                seconds: 0.2,
            },
        );
        let trace = obs.trace_jsonl();
        assert!(trace.is_ascii(), "trace must be pure ASCII");
        let lines: Vec<&str> = trace.lines().collect();
        assert!(lines.len() >= 6, "expected one line per record: {trace}");
        let mut types = Vec::new();
        for line in &lines {
            let v = Json::parse(line).expect("valid JSON line");
            types.push(v.field("type").unwrap().as_str().unwrap().to_string());
        }
        for t in ["span", "event", "counter", "gauge", "hist", "curve"] {
            assert!(types.iter().any(|x| x == t), "missing {t} line in {trace}");
        }
    }

    #[test]
    fn curve_line_has_one_point_per_epoch() {
        let obs = Obs::with_level(None);
        for epoch in 0..4 {
            obs.curve_point(
                "finetune",
                CurvePoint {
                    epoch,
                    loss: 1.0,
                    lr: 0.1,
                    examples: 2,
                    seconds: 0.1,
                },
            );
        }
        let trace = obs.trace_jsonl();
        let curve_line = trace.lines().find(|l| l.contains("\"curve\"")).unwrap();
        let v = Json::parse(curve_line).unwrap();
        let pts = v.field("points").unwrap().as_array().unwrap();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[3].field("epoch").unwrap().as_usize().unwrap(), 3);
    }

    #[test]
    fn hist_line_reports_buckets_and_quantiles() {
        let obs = Obs::with_level(None);
        let buckets = crate::Buckets::linear(0.0, 1.0, 5);
        for i in 0..50 {
            obs.observe_with("conf", &buckets, (i % 10) as f64 / 10.0);
        }
        let trace = obs.trace_jsonl();
        let line = trace.lines().find(|l| l.contains("\"hist\"")).unwrap();
        let v = Json::parse(line).unwrap();
        assert_eq!(v.field("count").unwrap().as_u64().unwrap(), 50);
        let counts = v.field("counts").unwrap().as_array().unwrap();
        assert!(counts.iter().any(|c| c.as_u64().unwrap() > 0));
        assert!(v.field("p50").unwrap().as_f64().unwrap() > 0.0);
    }
}
