//! Training telemetry: per-epoch loss/learning-rate/throughput curves.

/// One sample point on a [`TrainingCurve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Epoch (or pseudo-epoch) index, starting at 0.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Learning rate used for the epoch.
    pub lr: f32,
    /// Number of training examples processed in the epoch.
    pub examples: usize,
    /// Wall-clock seconds spent in the epoch.
    pub seconds: f64,
}

impl CurvePoint {
    /// Training throughput in examples per second (0 when instantaneous).
    pub fn examples_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.examples as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A named sequence of training measurements, one per epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingCurve {
    /// The recorded points, in epoch order.
    pub points: Vec<CurvePoint>,
}

impl TrainingCurve {
    /// An empty curve.
    pub fn new() -> TrainingCurve {
        TrainingCurve::default()
    }

    /// Appends a point.
    pub fn push(&mut self, point: CurvePoint) {
        self.points.push(point);
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded loss, if any.
    pub fn final_loss(&self) -> Option<f32> {
        self.points.last().map(|p| p.loss)
    }

    /// True when loss never increases by more than `tolerance` between
    /// consecutive points — a loose "training is converging" check.
    pub fn is_monotonic_within(&self, tolerance: f32) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].loss <= w[0].loss + tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(epoch: usize, loss: f32) -> CurvePoint {
        CurvePoint {
            epoch,
            loss,
            lr: 0.1,
            examples: 10,
            seconds: 0.5,
        }
    }

    #[test]
    fn tracks_points_and_final_loss() {
        let mut c = TrainingCurve::new();
        assert!(c.is_empty());
        c.push(pt(0, 2.0));
        c.push(pt(1, 1.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.final_loss(), Some(1.0));
        assert!(c.is_monotonic_within(0.0));
        c.push(pt(2, 1.5));
        assert!(!c.is_monotonic_within(0.1));
        assert!(c.is_monotonic_within(0.6));
    }

    #[test]
    fn throughput_is_examples_over_seconds() {
        let p = CurvePoint {
            epoch: 0,
            loss: 1.0,
            lr: 0.1,
            examples: 100,
            seconds: 2.0,
        };
        assert_eq!(p.examples_per_sec(), 50.0);
        let z = CurvePoint { seconds: 0.0, ..p };
        assert_eq!(z.examples_per_sec(), 0.0);
    }
}
