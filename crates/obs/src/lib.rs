//! `vega-obs` — zero-dependency tracing, metrics, and training telemetry
//! for the VEGA reproduction.
//!
//! The crate provides one [`Obs`] handle bundling four facilities:
//!
//! * **hierarchical spans** — RAII guards created with [`Obs::span`] (or the
//!   [`span!`] macro against the global handle). Spans nest per thread, so a
//!   span opened while another is active becomes its child; wall-clock time
//!   is aggregated per dotted path (`stage.substage.detail`). Work handed to
//!   another thread keeps its nesting by capturing [`Obs::current_path`] on
//!   the submitting thread and re-establishing it on the worker with
//!   [`Obs::adopt_parent`] (this is what `vega-par` does for every task).
//! * **metrics** — monotonic counters, gauges, and fixed-bucket histograms
//!   with p50/p90/p99 quantile estimates ([`Obs::counter_add`],
//!   [`Obs::gauge_set`], [`Obs::observe`]).
//! * **structured events** — leveled log records replacing ad-hoc
//!   `eprintln!`; verbosity is controlled by the `VEGA_LOG` env var
//!   (`error|warn|info|debug|trace|off`, default `info`).
//! * **exporters** — a flamegraph-style plain-text tree report
//!   ([`Obs::text_report`]), a JSON-lines trace file ([`Obs::trace_jsonl`],
//!   [`Obs::write_trace`]), a live metrics snapshot
//!   ([`Obs::metrics_json`]), and a Prometheus-style text exposition
//!   ([`Obs::prometheus_text`]) — all written without serde.
//! * **distributed tracing** — a [`TraceCtx`] (128-bit trace id + span id,
//!   minted deterministically by [`TraceIdGen`]) adopted per thread with
//!   [`Obs::adopt_trace`]; spans and events recorded under an adopted
//!   context are stamped with its trace id in the JSONL trace and the
//!   process-wide [`flight`] recorder (a bounded ring of recent records,
//!   dumpable on demand or on panic).
//!
//! Library code uses the process-wide handle via [`global()`]; tests that
//! need isolation construct their own `Obs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod tracectx;

mod curve;
mod expo;
mod report;
mod trace;

pub use curve::{CurvePoint, TrainingCurve};
pub use metrics::{Buckets, Histogram};
pub use tracectx::{TraceCtx, TraceIdGen};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error,
    /// Suspicious conditions the run survives.
    Warn,
    /// High-level progress (default verbosity).
    Info,
    /// Detailed diagnostics.
    Debug,
    /// Very chatty tracing.
    Trace,
}

impl Level {
    /// Short lowercase name (`"info"` etc.).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `VEGA_LOG` value. `off`/`none`/`0` yield `None` (silence);
    /// unknown values fall back to `Info`.
    pub fn from_env_str(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => None,
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => Some(Level::Info),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct SpanStat {
    pub(crate) count: u64,
    pub(crate) total: Duration,
}

#[derive(Debug, Clone)]
pub(crate) struct SpanRecord {
    pub(crate) path: String,
    pub(crate) start_us: u64,
    pub(crate) dur_us: u64,
    pub(crate) trace: Option<TraceCtx>,
}

#[derive(Debug, Clone)]
pub(crate) struct EventRecord {
    pub(crate) t_us: u64,
    pub(crate) level: Level,
    pub(crate) msg: String,
}

#[derive(Default)]
pub(crate) struct State {
    pub(crate) spans: BTreeMap<String, SpanStat>,
    pub(crate) span_records: Vec<SpanRecord>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) hists: BTreeMap<String, Histogram>,
    pub(crate) events: Vec<EventRecord>,
    pub(crate) curves: BTreeMap<String, TrainingCurve>,
}

struct Inner {
    t0: Instant,
    /// Minimum severity printed/buffered; `None` silences events entirely.
    level: Option<Level>,
    state: Mutex<State>,
}

/// An observability handle: the hub all spans, metrics, and events flow
/// through. Cheap to clone (shared state behind an `Arc`).
#[derive(Clone)]
pub struct Obs {
    /// Distinguishes handles on the per-thread span stack so independent
    /// `Obs` instances (e.g. in tests) never nest into each other.
    id: usize,
    inner: Arc<Inner>,
}

static NEXT_OBS_ID: AtomicUsize = AtomicUsize::new(1);
static GLOBAL: OnceLock<Obs> = OnceLock::new();

thread_local! {
    /// Stack of `(obs id, span path)` for the spans currently open on this
    /// thread — the tail entry with a matching id is the parent of the next
    /// span opened on that handle.
    static SPAN_STACK: RefCell<Vec<(usize, String)>> = const { RefCell::new(Vec::new()) };
    /// Stack of `(obs id, trace context)` adopted on this thread — the tail
    /// entry with a matching id stamps spans/events recorded on that handle.
    static TRACE_STACK: RefCell<Vec<(usize, TraceCtx)>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide [`Obs`] handle. Its event verbosity comes from the
/// `VEGA_LOG` env var, read once on first use.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(|| {
        let level = match std::env::var("VEGA_LOG") {
            Ok(v) => Level::from_env_str(&v),
            Err(_) => Some(Level::Info),
        };
        Obs::with_level(level)
    })
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    /// A fresh handle with the default `Info` verbosity.
    pub fn new() -> Obs {
        Obs::with_level(Some(Level::Info))
    }

    /// A fresh handle with an explicit verbosity (`None` = silent).
    pub fn with_level(level: Option<Level>) -> Obs {
        Obs {
            id: NEXT_OBS_ID.fetch_add(1, Ordering::Relaxed),
            inner: Arc::new(Inner {
                t0: Instant::now(),
                level,
                state: Mutex::new(State::default()),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned lock only means another thread panicked mid-update;
        // telemetry should still drain on the way out.
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn now_us(&self) -> u64 {
        self.inner.t0.elapsed().as_micros() as u64
    }

    // ---- spans ----------------------------------------------------------

    /// Opens a span named `name`, nested under the span currently open on
    /// this thread (if any). Drop the guard — or call
    /// [`SpanGuard::finish`] — to record its wall-clock duration.
    pub fn span(&self, name: &str) -> SpanGuard {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.iter().rev().find(|(id, _)| *id == self.id);
            let path = match parent {
                Some((_, p)) => format!("{p}.{name}"),
                None => name.to_string(),
            };
            stack.push((self.id, path.clone()));
            path
        });
        SpanGuard {
            obs: self.clone(),
            path,
            start: Instant::now(),
            start_us: self.now_us(),
            done: false,
        }
    }

    /// The dotted path of the span currently open on this thread for this
    /// handle, if any. Capture it before handing work to another thread and
    /// re-establish it there with [`Obs::adopt_parent`] so worker-side spans
    /// keep nesting under the submitting thread's span.
    pub fn current_path(&self) -> Option<String> {
        SPAN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(id, _)| *id == self.id)
                .map(|(_, p)| p.clone())
        })
    }

    /// Installs `path` as the parent for spans subsequently opened on this
    /// thread (until the guard drops). The synthetic frame records no time
    /// itself — it only re-parents. `None` is a no-op, so callers can pass
    /// through [`Obs::current_path`] unconditionally.
    pub fn adopt_parent(&self, path: Option<&str>) -> AdoptGuard {
        if let Some(p) = path {
            SPAN_STACK.with(|stack| stack.borrow_mut().push((self.id, p.to_string())));
        }
        AdoptGuard {
            obs: self.clone(),
            path: path.map(String::from),
        }
    }

    // ---- trace contexts -------------------------------------------------

    /// The trace context adopted on this thread for this handle, if any.
    /// Spans and events recorded while a context is adopted are stamped
    /// with its trace id (in the JSONL trace and the flight recorder).
    pub fn current_trace(&self) -> Option<TraceCtx> {
        TRACE_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(id, _)| *id == self.id)
                .map(|(_, t)| *t)
        })
    }

    /// Installs `ctx` as the trace context for work subsequently recorded
    /// on this thread (until the guard drops). `None` is a no-op, so
    /// callers can pass a request's optional trace field through
    /// unconditionally. Contexts nest like spans: the innermost adoption
    /// wins, and dropping the guard restores the outer one.
    pub fn adopt_trace(&self, ctx: Option<TraceCtx>) -> TraceAdoptGuard {
        if let Some(c) = ctx {
            TRACE_STACK.with(|stack| stack.borrow_mut().push((self.id, c)));
        }
        TraceAdoptGuard {
            obs: self.clone(),
            adopted: ctx.is_some(),
        }
    }

    fn record_span(&self, path: &str, start_us: u64, dur: Duration) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(i) = stack
                .iter()
                .rposition(|(id, p)| *id == self.id && p == path)
            {
                stack.remove(i);
            }
        });
        let trace = self.current_trace();
        let dur_us = dur.as_micros() as u64;
        flight::record_span_close(path, dur_us, trace);
        let mut st = self.lock();
        let stat = st.spans.entry(path.to_string()).or_insert(SpanStat {
            count: 0,
            total: Duration::ZERO,
        });
        stat.count += 1;
        stat.total += dur;
        st.span_records.push(SpanRecord {
            path: path.to_string(),
            start_us,
            dur_us,
            trace,
        });
    }

    /// Total recorded wall-clock time for a span path, if any.
    pub fn span_total(&self, path: &str) -> Option<Duration> {
        self.lock().spans.get(path).map(|s| s.total)
    }

    /// Number of times a span path completed.
    pub fn span_count(&self, path: &str) -> u64 {
        self.lock().spans.get(path).map_or(0, |s| s.count)
    }

    // ---- counters & gauges ----------------------------------------------

    /// Adds `n` to a monotonic counter (creating it at zero).
    pub fn counter_add(&self, name: &str, n: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an instantaneous value.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    // ---- histograms -----------------------------------------------------

    /// Records an observation in a histogram, creating it with
    /// [`Buckets::default`] (an exponential latency scale) if new.
    pub fn observe(&self, name: &str, v: f64) {
        self.lock()
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(Buckets::default()))
            .observe(v);
    }

    /// Records an observation, creating the histogram with the given
    /// buckets if new (existing buckets are kept).
    pub fn observe_with(&self, name: &str, buckets: &Buckets, v: f64) {
        self.lock()
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets.clone()))
            .observe(v);
    }

    /// A snapshot of a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().hists.get(name).cloned()
    }

    // ---- events ---------------------------------------------------------

    /// True when events at `level` are recorded under the current
    /// verbosity.
    pub fn enabled(&self, level: Level) -> bool {
        match self.inner.level {
            Some(max) => level <= max,
            None => false,
        }
    }

    /// Records a structured event. Enabled events are buffered for the
    /// trace and echoed to stderr as `[level] message`.
    pub fn event(&self, level: Level, msg: impl Into<String>) {
        if !self.enabled(level) {
            return;
        }
        let msg = msg.into();
        eprintln!("[{}] {}", level.name(), msg);
        flight::record_event(flight::FlightKind::Event, &msg, self.current_trace());
        self.lock().events.push(EventRecord {
            t_us: self.now_us(),
            level,
            msg,
        });
    }

    /// Number of buffered events.
    pub fn event_count(&self) -> usize {
        self.lock().events.len()
    }

    // ---- training curves ------------------------------------------------

    /// Appends a point to a named training curve.
    pub fn curve_point(&self, name: &str, point: CurvePoint) {
        self.lock()
            .curves
            .entry(name.to_string())
            .or_default()
            .push(point);
    }

    /// A snapshot of a named training curve, if recorded.
    pub fn curve(&self, name: &str) -> Option<TrainingCurve> {
        self.lock().curves.get(name).cloned()
    }

    // ---- exporters & lifecycle ------------------------------------------

    /// Renders the flamegraph-style text report (span tree + metrics).
    pub fn text_report(&self) -> String {
        report::render(&self.lock())
    }

    /// Renders the whole recorded state as JSON-lines (one object per
    /// line; pure ASCII, no embedded newlines).
    pub fn trace_jsonl(&self) -> String {
        trace::render(&self.lock())
    }

    /// The full metrics registry (counters, gauges, histogram summaries)
    /// as one JSON object — the `{"op":"metrics"}` payload.
    pub fn metrics_json(&self) -> json::Json {
        expo::metrics_json(&self.lock())
    }

    /// The metrics registry in Prometheus text exposition format, rendered
    /// from the same snapshot as [`Obs::metrics_json`].
    pub fn prometheus_text(&self) -> String {
        expo::prometheus(&self.lock())
    }

    /// Writes [`Obs::trace_jsonl`] to a file.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.trace_jsonl())
    }

    /// Discards all recorded spans, metrics, events, and curves (the
    /// verbosity and epoch are kept). Intended for tests.
    pub fn reset(&self) {
        *self.lock() = State::default();
    }
}

/// RAII guard for an adopted trace context (see [`Obs::adopt_trace`]);
/// restores the previously adopted context on drop.
pub struct TraceAdoptGuard {
    obs: Obs,
    adopted: bool,
}

impl Drop for TraceAdoptGuard {
    fn drop(&mut self) {
        if self.adopted {
            TRACE_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(i) = stack.iter().rposition(|(id, _)| *id == self.obs.id) {
                    stack.remove(i);
                }
            });
        }
    }
}

/// RAII guard for an adopted parent frame (see [`Obs::adopt_parent`]);
/// removes the synthetic frame on drop without recording anything.
pub struct AdoptGuard {
    obs: Obs,
    path: Option<String>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(i) = stack
                    .iter()
                    .rposition(|(id, p)| *id == self.obs.id && p == path)
                {
                    stack.remove(i);
                }
            });
        }
    }
}

/// RAII guard for an open span; records wall-clock time on drop.
pub struct SpanGuard {
    obs: Obs,
    path: String,
    start: Instant,
    start_us: u64,
    done: bool,
}

impl SpanGuard {
    /// The full dotted path of this span (parents included).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Closes the span now and returns its measured duration.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.done = true;
        self.obs.record_span(&self.path, self.start_us, dur);
        dur
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.done {
            let dur = self.start.elapsed();
            self.obs.record_span(&self.path, self.start_us, dur);
        }
    }
}

/// Opens a span on the [`global()`] handle; accepts `format!` arguments.
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        $crate::global().span(&format!($($arg)*))
    };
}

/// Records an `error` event on the [`global()`] handle.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::global().event($crate::Level::Error, format!($($arg)*))
    };
}

/// Records a `warn` event on the [`global()`] handle.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::global().event($crate::Level::Warn, format!($($arg)*))
    };
}

/// Records an `info` event on the [`global()`] handle.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::global().event($crate::Level::Info, format!($($arg)*))
    };
}

/// Records a `debug` event on the [`global()`] handle.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::global().event($crate::Level::Debug, format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn spans_nest_and_aggregate_by_path() {
        let obs = Obs::with_level(None);
        {
            let _outer = obs.span("stage1");
            {
                let inner = obs.span("tokenize");
                assert_eq!(inner.path(), "stage1.tokenize");
                let _ = inner.finish();
            }
            let again = obs.span("tokenize");
            drop(again);
        }
        assert_eq!(obs.span_count("stage1"), 1);
        assert_eq!(obs.span_count("stage1.tokenize"), 2);
        assert!(obs.span_total("stage1").unwrap() >= obs.span_total("stage1.tokenize").unwrap());
        // After all guards closed, a new root span is top-level again.
        let root = obs.span("stage2");
        assert_eq!(root.path(), "stage2");
    }

    #[test]
    fn sibling_spans_do_not_nest_after_finish() {
        let obs = Obs::with_level(None);
        let a = obs.span("a");
        let _ = a.finish();
        let b = obs.span("b");
        assert_eq!(b.path(), "b");
    }

    #[test]
    fn independent_handles_do_not_nest_into_each_other() {
        let a = Obs::with_level(None);
        let b = Obs::with_level(None);
        let _ga = a.span("outer");
        let gb = b.span("solo");
        assert_eq!(gb.path(), "solo");
    }

    #[test]
    fn concurrent_counter_increments_from_multiple_threads() {
        let obs = Obs::with_level(None);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let obs = obs.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        obs.counter_add("hits", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(obs.counter("hits"), 8000);
    }

    #[test]
    fn spans_on_other_threads_are_roots() {
        let obs = Obs::with_level(None);
        let _outer = obs.span("outer");
        let obs2 = obs.clone();
        let path = thread::spawn(move || {
            let g = obs2.span("worker");
            g.path().to_string()
        })
        .join()
        .unwrap();
        // The span stack is per-thread, so the worker span is not a child
        // of `outer`.
        assert_eq!(path, "worker");
    }

    #[test]
    fn adopt_parent_reparents_worker_spans() {
        let obs = Obs::with_level(None);
        let outer = obs.span("outer");
        let parent = obs.current_path();
        assert_eq!(parent.as_deref(), Some("outer"));
        let obs2 = obs.clone();
        let path = thread::spawn(move || {
            let _adopt = obs2.adopt_parent(parent.as_deref());
            let g = obs2.span("worker");
            g.path().to_string()
        })
        .join()
        .unwrap();
        assert_eq!(path, "outer.worker");
        // Only the real span recorded time — the synthetic frame did not.
        assert_eq!(obs.span_count("outer.worker"), 1);
        assert_eq!(obs.span_count("outer"), 0);
        drop(outer);
    }

    #[test]
    fn adopt_parent_none_is_a_no_op_and_guard_restores_stack() {
        let obs = Obs::with_level(None);
        {
            let _adopt = obs.adopt_parent(None);
            assert_eq!(obs.current_path(), None);
        }
        {
            let _adopt = obs.adopt_parent(Some("a.b"));
            assert_eq!(obs.current_path().as_deref(), Some("a.b"));
        }
        // Guard dropped: new spans are roots again.
        let g = obs.span("root");
        assert_eq!(g.path(), "root");
    }

    #[test]
    fn adopt_trace_stamps_spans_and_nests() {
        let obs = Obs::with_level(None);
        let ctx = TraceIdGen::new(5).mint();
        assert_eq!(obs.current_trace(), None);
        {
            let _t = obs.adopt_trace(Some(ctx));
            assert_eq!(obs.current_trace(), Some(ctx));
            let inner = ctx.child(1);
            {
                let _t2 = obs.adopt_trace(Some(inner));
                assert_eq!(obs.current_trace(), Some(inner), "innermost wins");
            }
            assert_eq!(obs.current_trace(), Some(ctx), "outer context restored");
            let _ = obs.span("traced").finish();
        }
        assert_eq!(obs.current_trace(), None);
        let _ = obs.span("untraced").finish();
        // The JSONL trace carries the id only on the traced span.
        let jsonl = obs.trace_jsonl();
        let traced = jsonl.lines().find(|l| l.contains("\"traced\"")).unwrap();
        assert!(traced.contains(&ctx.render()), "{traced}");
        let untraced = jsonl.lines().find(|l| l.contains("\"untraced\"")).unwrap();
        assert!(!untraced.contains("trace\":"), "{untraced}");
        // None is a no-op and drops cleanly.
        drop(obs.adopt_trace(None));
        assert_eq!(obs.current_trace(), None);
    }

    #[test]
    fn independent_handles_do_not_share_trace_contexts() {
        let a = Obs::with_level(None);
        let b = Obs::with_level(None);
        let ctx = TraceIdGen::new(9).mint();
        let _t = a.adopt_trace(Some(ctx));
        assert_eq!(a.current_trace(), Some(ctx));
        assert_eq!(b.current_trace(), None);
    }

    #[test]
    fn disabled_levels_record_nothing() {
        let obs = Obs::with_level(Some(Level::Warn));
        obs.event(Level::Info, "ignored");
        obs.event(Level::Warn, "kept");
        assert_eq!(obs.event_count(), 1);
        let silent = Obs::with_level(None);
        silent.event(Level::Error, "dropped");
        assert_eq!(silent.event_count(), 0);
    }

    #[test]
    fn level_parsing_matches_vega_log_values() {
        assert_eq!(Level::from_env_str("off"), None);
        assert_eq!(Level::from_env_str("0"), None);
        assert_eq!(Level::from_env_str("ERROR"), Some(Level::Error));
        assert_eq!(Level::from_env_str("warn"), Some(Level::Warn));
        assert_eq!(Level::from_env_str("trace"), Some(Level::Trace));
        assert_eq!(Level::from_env_str("bogus"), Some(Level::Info));
    }

    #[test]
    fn gauges_and_histograms_snapshot() {
        let obs = Obs::with_level(None);
        obs.gauge_set("temp", 3.5);
        assert_eq!(obs.gauge("temp"), Some(3.5));
        let buckets = Buckets::linear(0.0, 1.0, 10);
        for i in 0..10 {
            obs.observe_with("conf", &buckets, i as f64 / 10.0);
        }
        let h = obs.histogram("conf").unwrap();
        assert_eq!(h.count(), 10);
        assert!(h.quantile(0.5) > 0.2 && h.quantile(0.5) < 0.7);
    }

    #[test]
    fn curves_accumulate_points() {
        let obs = Obs::with_level(None);
        for epoch in 0..3 {
            obs.curve_point(
                "finetune",
                CurvePoint {
                    epoch,
                    loss: 1.0 / (epoch + 1) as f32,
                    lr: 0.1,
                    examples: 4,
                    seconds: 0.01,
                },
            );
        }
        let c = obs.curve("finetune").unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.is_monotonic_within(0.0));
    }

    #[test]
    fn reset_clears_state() {
        let obs = Obs::with_level(None);
        obs.counter_add("x", 1);
        let _ = obs.span("s").finish();
        obs.reset();
        assert_eq!(obs.counter("x"), 0);
        assert_eq!(obs.span_count("s"), 0);
    }
}
