//! A minimal JSON value type with a hand-rolled parser and writer.
//!
//! The workspace is built offline with no registry access, so this module
//! stands in for `serde_json` everywhere the reproduction needs structured
//! persistence: model checkpoints (`vega-nn`, `vega-model`) and the JSONL
//! trace exporter. Numbers keep their raw spelling so `u64` seeds and `f32`
//! weights round-trip losslessly; the writer emits pure-ASCII output (every
//! non-ASCII scalar is `\u`-escaped), which keeps JSONL lines single-line and
//! terminal-safe.

use std::fmt;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats, which JSON cannot express).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw decimal spelling.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key→value list.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or the typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, with a byte offset for parse errors.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { msg: msg.into() })
}

impl Json {
    /// A number from an `f64`; non-finite values become [`Json::Null`].
    pub fn num_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// A number from an `f32`; non-finite values become [`Json::Null`].
    pub fn num_f32(v: f32) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// A number from a `u64`.
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from a `usize`.
    pub fn num_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from an `i64`.
    pub fn num_i64(v: i64) -> Json {
        Json::Num(v.to_string())
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    ///
    /// # Errors
    /// Returns an error if `self` is not an object or the key is absent.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(fields) => match fields.iter().find(|(k, _)| k == key) {
                Some((_, v)) => Ok(v),
                None => err(format!("missing field `{key}`")),
            },
            _ => err(format!("expected object with field `{key}`")),
        }
    }

    /// The elements of an array.
    ///
    /// # Errors
    /// Returns an error if `self` is not an array.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => err("expected array"),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    /// Returns an error if `self` is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => err("expected string"),
        }
    }

    /// The value as a bool.
    ///
    /// # Errors
    /// Returns an error if `self` is not a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => err("expected bool"),
        }
    }

    /// The value as an `f64`. `null` reads back as NaN (the writer maps
    /// non-finite floats to `null`).
    ///
    /// # Errors
    /// Returns an error if `self` is not a number or `null`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().map_err(|_| JsonError {
                msg: format!("bad number `{raw}`"),
            }),
            Json::Null => Ok(f64::NAN),
            _ => err("expected number"),
        }
    }

    /// The value as an `f32` (see [`Json::as_f64`] for the `null` rule).
    ///
    /// # Errors
    /// Returns an error if `self` is not a number or `null`.
    pub fn as_f32(&self) -> Result<f32, JsonError> {
        match self {
            Json::Num(raw) => raw.parse::<f32>().map_err(|_| JsonError {
                msg: format!("bad number `{raw}`"),
            }),
            Json::Null => Ok(f32::NAN),
            _ => err("expected number"),
        }
    }

    /// The value as a `u64` (exact; rejects fractions and negatives).
    ///
    /// # Errors
    /// Returns an error if `self` is not an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().map_err(|_| JsonError {
                msg: format!("bad u64 `{raw}`"),
            }),
            _ => err("expected unsigned integer"),
        }
    }

    /// The value as a `usize` (exact).
    ///
    /// # Errors
    /// Returns an error if `self` is not an unsigned integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        match self {
            Json::Num(raw) => raw.parse::<usize>().map_err(|_| JsonError {
                msg: format!("bad usize `{raw}`"),
            }),
            _ => err("expected unsigned integer"),
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    /// Returns an error describing the first malformed byte.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escapes a string's content for embedding inside JSON quotes. The output
/// is pure ASCII: quotes, backslashes and control characters use the short
/// escapes, everything non-ASCII becomes `\uXXXX` (with surrogate pairs
/// beyond the BMP).
pub fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c if c.is_ascii() => out.push(c),
            c => {
                let mut buf = [0u16; 2];
                for unit in c.encode_utf16(&mut buf) {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            msg: "non-utf8 number".into(),
        })?;
        if raw.parse::<f64>().is_err() {
            return err(format!("bad number `{raw}` at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let s =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| JsonError {
                msg: "non-utf8 \\u escape".into(),
            })?;
        let v = u16::from_str_radix(s, 16).map_err(|_| JsonError {
            msg: format!("bad \\u escape `{s}`"),
        })?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut units: Vec<u16> = Vec::new();
        let flush = |units: &mut Vec<u16>, out: &mut String| -> Result<(), JsonError> {
            if !units.is_empty() {
                match String::from_utf16(units) {
                    Ok(s) => out.push_str(&s),
                    Err(_) => return err("unpaired surrogate"),
                }
                units.clear();
            }
            Ok(())
        };
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    flush(&mut units, &mut out)?;
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError {
                        msg: "truncated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'u' => units.push(self.hex4()?),
                        _ => {
                            flush(&mut units, &mut out)?;
                            match esc {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                b'/' => out.push('/'),
                                b'n' => out.push('\n'),
                                b'r' => out.push('\r'),
                                b't' => out.push('\t'),
                                b'b' => out.push('\u{8}'),
                                b'f' => out.push('\u{c}'),
                                c => {
                                    return err(format!("bad escape `\\{}`", c as char));
                                }
                            }
                        }
                    }
                }
                Some(_) => {
                    flush(&mut units, &mut out)?;
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            msg: "non-utf8 input".into(),
                        })?;
                    let ch = rest.chars().next().ok_or(JsonError {
                        msg: "unterminated string".into(),
                    })?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::num_u64(1), Json::Bool(false), Json::Null]),
            ),
            ("b", Json::obj([("nested", Json::str("x"))])),
            ("n", Json::num_f32(-1.5e-3)),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_quotes_newlines_and_non_ascii() {
        let v = Json::str("say \"hi\"\nüber → done\ttab \\ back");
        let text = v.render();
        assert!(text.is_ascii(), "writer must emit pure ASCII: {text}");
        assert!(!text.contains('\n'), "JSONL lines must stay single-line");
        assert!(text.contains("\\\"hi\\\""));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u00fc"), "ü escaped: {text}");
        assert!(text.contains("\\u2192"), "→ escaped: {text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_astral_plane_as_surrogate_pair() {
        let v = Json::str("ok 🚀");
        let text = v.render();
        assert!(text.contains("\\ud83d\\ude80"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for x in [
            0.0f32,
            1.0,
            -3.5,
            1e-9,
            3.141_592_7,
            f32::MAX,
            f32::MIN_POSITIVE,
        ] {
            let back = Json::parse(&Json::num_f32(x).render())
                .unwrap()
                .as_f32()
                .unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        let big = u64::MAX - 3;
        let back = Json::parse(&Json::num_u64(big).render())
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::num_f32(f32::NAN), Json::Null);
        assert!(Json::Null.as_f32().unwrap().is_nan());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn field_and_accessor_errors_name_the_problem() {
        let v = Json::parse("{\"a\": 1}").unwrap();
        assert_eq!(v.field("a").unwrap().as_u64().unwrap(), 1);
        assert!(v.field("b").unwrap_err().msg.contains("`b`"));
        assert!(v.field("a").unwrap().as_str().is_err());
    }
}
