//! Request-scoped trace identity: a 128-bit trace id plus a 64-bit span id.
//!
//! A [`TraceCtx`] is minted once per logical request (by the serve client,
//! via [`TraceIdGen`]) and travels with the request across process
//! boundaries: the wire form is a single ASCII string
//! (`<32 hex>/<16 hex>`), so any transport that can carry a string field
//! can carry a trace. On the receiving side the context is re-established
//! for the handling thread with [`crate::Obs::adopt_trace`], after which
//! every span closed on that thread — queue wait, cache lookup, decode
//! steps — is stamped with the caller's trace id in both the JSONL trace
//! and the flight recorder.
//!
//! Ids come from a seeded [`splitmix64`] stream, never from clocks or OS
//! randomness, so a replayed run (same seed, same request order) mints the
//! identical id sequence — the property the chaos suite asserts.

/// splitmix64 — the workspace's stock deterministic mixer (the same
/// finalizer `vega-fault` and the retry-jitter policy use).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A distributed-tracing context: 128-bit trace id (`trace_hi`/`trace_lo`)
/// identifying the end-to-end request, plus a 64-bit span id identifying
/// the sender's span within that trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceCtx {
    /// High 64 bits of the trace id.
    pub trace_hi: u64,
    /// Low 64 bits of the trace id.
    pub trace_lo: u64,
    /// The sender's span id within the trace.
    pub span_id: u64,
}

impl TraceCtx {
    /// The wire form: 32 lowercase hex chars of trace id, `/`, 16 hex chars
    /// of span id (e.g. `00c0ffee…/0badf00d…`).
    pub fn render(&self) -> String {
        format!(
            "{:016x}{:016x}/{:016x}",
            self.trace_hi, self.trace_lo, self.span_id
        )
    }

    /// The 32-hex-char trace id alone (no span id).
    pub fn trace_hex(&self) -> String {
        format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
    }

    /// Parses the [`TraceCtx::render`] form. Returns `None` for anything
    /// malformed (wrong length, non-hex, missing separator).
    pub fn parse(s: &str) -> Option<TraceCtx> {
        let (trace, span) = s.split_once('/')?;
        if trace.len() != 32 || span.len() != 16 {
            return None;
        }
        let hex = |h: &str| u64::from_str_radix(h, 16).ok();
        Some(TraceCtx {
            trace_hi: hex(&trace[..16])?,
            trace_lo: hex(&trace[16..])?,
            span_id: hex(span)?,
        })
    }

    /// A child context: same trace id, a fresh span id derived
    /// deterministically from this span id and a caller-chosen key (e.g. a
    /// stage index). Two runs deriving the same child of the same parent
    /// get the same id.
    pub fn child(&self, key: u64) -> TraceCtx {
        TraceCtx {
            trace_hi: self.trace_hi,
            trace_lo: self.trace_lo,
            span_id: splitmix64(self.span_id ^ splitmix64(key ^ 0x5EED)),
        }
    }
}

/// A deterministic trace-id mint: a seeded splitmix64 stream yielding one
/// fresh [`TraceCtx`] per call. Same seed, same sequence — which keeps
/// trace ids stable under `VEGA_FAULT_PLAN` chaos replays (the client mints
/// one context per *logical* request, before any retries).
#[derive(Debug, Clone)]
pub struct TraceIdGen {
    state: u64,
}

impl TraceIdGen {
    /// A mint seeded with `seed` (two mints with equal seeds yield equal
    /// sequences).
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen {
            state: splitmix64(seed ^ 0x7ACE_1D5E_ED00_0001),
        }
    }

    /// Mints the next context in the stream.
    pub fn mint(&mut self) -> TraceCtx {
        let mut step = || {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(self.state)
        };
        TraceCtx {
            trace_hi: step(),
            trace_lo: step(),
            span_id: step(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let ctx = TraceCtx {
            trace_hi: 0x0123_4567_89ab_cdef,
            trace_lo: 0xfedc_ba98_7654_3210,
            span_id: 0x00ff_00ff_00ff_00ff,
        };
        let s = ctx.render();
        assert_eq!(s.len(), 32 + 1 + 16);
        assert_eq!(TraceCtx::parse(&s), Some(ctx));
    }

    #[test]
    fn parse_rejects_malformed_inputs() {
        for bad in [
            "",
            "no-slash",
            "0123/0123",
            &("z".repeat(32) + "/" + &"0".repeat(16)),
            &("0".repeat(32) + "/" + &"0".repeat(15)),
            &("0".repeat(33) + "/" + &"0".repeat(16)),
        ] {
            assert_eq!(TraceCtx::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn mint_is_deterministic_per_seed() {
        let mut a = TraceIdGen::new(7);
        let mut b = TraceIdGen::new(7);
        let seq_a: Vec<TraceCtx> = (0..16).map(|_| a.mint()).collect();
        let seq_b: Vec<TraceCtx> = (0..16).map(|_| b.mint()).collect();
        assert_eq!(seq_a, seq_b, "same seed must mint the same sequence");
        let mut c = TraceIdGen::new(8);
        assert_ne!(seq_a[0], c.mint(), "different seeds diverge");
        // Trace ids within one stream are distinct.
        let mut ids: Vec<String> = seq_a.iter().map(TraceCtx::trace_hex).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn child_keeps_trace_id_and_derives_span_deterministically() {
        let parent = TraceIdGen::new(1).mint();
        let c1 = parent.child(0);
        let c2 = parent.child(1);
        assert_eq!(c1.trace_hex(), parent.trace_hex());
        assert_eq!(c1, parent.child(0), "child derivation is pure");
        assert_ne!(c1.span_id, c2.span_id);
        assert_ne!(c1.span_id, parent.span_id);
    }
}
