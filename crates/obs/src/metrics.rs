//! Counters, gauges, and fixed-bucket histograms.
//!
//! Histograms use a fixed set of upper bucket bounds chosen at creation
//! time; quantiles (p50/p90/p99) are estimated by walking the cumulative
//! counts and linearly interpolating inside the bucket that crosses the
//! rank. The estimate is exact for the min/max and accurate to a bucket
//! width otherwise, which is plenty for latency and confidence-score
//! distributions.

/// Upper bucket bounds for a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets {
    bounds: Vec<f64>,
}

impl Buckets {
    /// `n` evenly spaced bucket bounds covering `(lo, hi]`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Buckets {
        assert!(n > 0 && hi > lo, "bad linear bucket spec");
        let step = (hi - lo) / n as f64;
        Buckets {
            bounds: (1..=n).map(|i| lo + step * i as f64).collect(),
        }
    }

    /// `n` bucket bounds starting at `start`, each `factor`× the previous.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Buckets {
        assert!(
            n > 0 && start > 0.0 && factor > 1.0,
            "bad exponential bucket spec"
        );
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Buckets { bounds }
    }

    /// The upper bounds, ascending.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

impl Default for Buckets {
    /// A general-purpose latency scale: 20 exponential buckets from 100µs
    /// up to ~52s (in seconds).
    fn default() -> Buckets {
        Buckets::exponential(1e-4, 2.0, 20)
    }
}

/// A fixed-bucket histogram with quantile estimation.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Buckets,
    /// One count per bound, plus a final overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over the given bucket bounds.
    pub fn new(buckets: Buckets) -> Histogram {
        let n = buckets.bounds.len();
        Histogram {
            buckets,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self
            .buckets
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.buckets.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// The bucket bounds.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Per-bucket counts (one per bound, plus the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the bucket containing the rank. Returns NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                // Interpolate within bucket i. The bucket spans
                // (lower, upper]; both edges are clamped into the observed
                // [min, max] range unconditionally, so the estimate can
                // never leave the data — in particular the overflow bucket
                // (which has no finite upper bound) reports the max
                // observed value, not a bucket bound, and a bucket whose
                // nominal edges lie outside the data collapses toward the
                // real observations.
                let raw_lower = if i == 0 {
                    f64::NEG_INFINITY
                } else {
                    self.buckets.bounds[i - 1]
                };
                let raw_upper = if i < self.buckets.bounds.len() {
                    self.buckets.bounds[i]
                } else {
                    f64::INFINITY
                };
                let lower = raw_lower.clamp(self.min, self.max);
                let upper = raw_upper.clamp(self.min, self.max);
                let within = (rank - cum as f64) / c as f64;
                return lower + (upper - lower) * within.clamp(0.0, 1.0);
            }
            cum = next;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_cover_range() {
        let b = Buckets::linear(0.0, 1.0, 4);
        assert_eq!(b.bounds(), &[0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        // 1..=1000 uniformly: p50 ≈ 500, p90 ≈ 900, p99 ≈ 990.
        let mut h = Histogram::new(Buckets::linear(0.0, 1000.0, 100));
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!(
            (h.quantile(0.5) - 500.0).abs() < 15.0,
            "p50 = {}",
            h.quantile(0.5)
        );
        assert!(
            (h.quantile(0.9) - 900.0).abs() < 15.0,
            "p90 = {}",
            h.quantile(0.9)
        );
        assert!(
            (h.quantile(0.99) - 990.0).abs() < 15.0,
            "p99 = {}",
            h.quantile(0.99)
        );
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn quantiles_on_bimodal_distribution() {
        // 90 observations at ~1.0 and 10 at ~100.0: p50 stays near the low
        // mode, p99 lands in the high mode.
        let mut h = Histogram::new(Buckets::exponential(0.5, 2.0, 12));
        for _ in 0..90 {
            h.observe(1.0);
        }
        for _ in 0..10 {
            h.observe(100.0);
        }
        assert!(h.quantile(0.5) <= 2.0, "p50 = {}", h.quantile(0.5));
        assert!(h.quantile(0.99) > 50.0, "p99 = {}", h.quantile(0.99));
    }

    #[test]
    fn overflow_bucket_catches_large_values() {
        let mut h = Histogram::new(Buckets::linear(0.0, 1.0, 2));
        h.observe(5.0);
        h.observe(7.0);
        assert_eq!(h.counts(), &[0, 0, 2]);
        assert_eq!(h.max(), 7.0);
        assert_eq!(h.quantile(1.0), 7.0);
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = Histogram::new(Buckets::default());
        assert!(h.quantile(0.5).is_nan());
        assert!(h.min().is_nan());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_on_empty_histogram_is_nan_for_all_q() {
        let h = Histogram::new(Buckets::linear(0.0, 1.0, 4));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(h.quantile(q).is_nan(), "q={q}");
        }
    }

    #[test]
    fn quantile_on_single_sample_returns_that_sample() {
        // A lone observation is both min and max, so every quantile must
        // collapse to it — even when the bucket nominally spans (0.25, 0.5].
        let mut h = Histogram::new(Buckets::linear(0.0, 1.0, 4));
        h.observe(0.3);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.quantile(q), 0.3, "q={q}");
        }
        // Same for a single sample in the overflow bucket.
        let mut h = Histogram::new(Buckets::linear(0.0, 1.0, 2));
        h.observe(42.0);
        assert_eq!(h.counts(), &[0, 0, 1]);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 42.0, "q={q}");
        }
    }

    #[test]
    fn quantile_with_all_samples_in_overflow_clamps_to_observed_range() {
        // Every observation exceeds the largest bound, so the overflow
        // bucket (no finite upper edge) holds everything. Quantiles must
        // stay inside [min, max] rather than reporting a bucket bound or
        // infinity.
        let mut h = Histogram::new(Buckets::linear(0.0, 1.0, 2));
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[0, 0, 4]);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est.is_finite(), "q={q} est={est}");
            assert!((10.0..=40.0).contains(&est), "q={q} est={est}");
        }
        assert_eq!(h.quantile(1.0), 40.0);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut h = Histogram::new(Buckets::default());
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }
}
