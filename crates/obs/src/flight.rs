//! The flight recorder: a process-wide, fixed-capacity ring buffer that
//! retains the last N span-close / event / fault records, each stamped with
//! the trace context active on the recording thread.
//!
//! The point is a black box: when a serve process panics, wedges, or fails
//! a chaos run, the recorder holds the immediate history — which requests'
//! spans closed, in what order, carrying which trace ids — without anyone
//! having asked for a trace file in advance. It follows the `vega-fault`
//! cost discipline: **when disabled, a record call is one relaxed atomic
//! load and an immediate return** (the obs-overhead bench pins this, and
//! `ci.sh` enforces a budget). When enabled, an append takes one short
//! mutex hold to push into the ring (overwriting the oldest record once
//! full); there is no allocation beyond the record itself.
//!
//! Two dump forms:
//!
//! * [`dump_json`] — every retained record, oldest first, with sequence
//!   numbers and microsecond timestamps (the debugging form; also what the
//!   serve `flightdump` op returns).
//! * [`dump_stable_json`] — only trace-carrying records, stripped of
//!   timing and sequence numbers and sorted into a canonical order. Two
//!   same-seed replays of the same workload produce *byte-identical*
//!   stable dumps even though wall-clock timings differ — the form the
//!   chaos determinism suite compares.

use crate::json::Json;
use crate::tracectx::TraceCtx;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// What kind of moment a [`FlightRecord`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightKind {
    /// A span closed (`what` is the dotted span path, `dur_us` its length).
    Span,
    /// A structured event was recorded (`what` is the message).
    Event,
    /// A `vega-fault` site fired (`what` is `site#hit`).
    Fault,
}

impl FlightKind {
    /// Short lowercase name (`"span"` etc.).
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Span => "span",
            FlightKind::Event => "event",
            FlightKind::Fault => "fault",
        }
    }
}

/// One retained record.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Monotonic sequence number (never reused; gaps mean overwritten
    /// records).
    pub seq: u64,
    /// Microseconds since the recorder was configured.
    pub t_us: u64,
    /// Record kind.
    pub kind: FlightKind,
    /// Span path, event message, or fault `site#hit`.
    pub what: String,
    /// Span duration in microseconds (0 for events/faults).
    pub dur_us: u64,
    /// The trace context active on the recording thread, if any.
    pub trace: Option<TraceCtx>,
}

impl FlightRecord {
    /// The record as a JSON object (the `flightdump` wire form).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq".to_string(), Json::num_u64(self.seq)),
            ("t_us".to_string(), Json::num_u64(self.t_us)),
            ("kind".to_string(), Json::str(self.kind.name())),
            ("what".to_string(), Json::str(&self.what)),
            ("dur_us".to_string(), Json::num_u64(self.dur_us)),
        ];
        if let Some(t) = &self.trace {
            fields.push(("trace".to_string(), Json::str(t.render())));
        }
        Json::Obj(fields)
    }
}

struct Ring {
    cap: usize,
    next_seq: u64,
    buf: VecDeque<FlightRecord>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING: Mutex<Option<Ring>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Enables the recorder with room for `cap` records (clearing anything
/// previously retained), or disables it with `cap == 0`. Configuration is
/// process-wide; `vega-serve` enables it at startup.
pub fn configure(cap: usize) {
    let _ = epoch();
    let mut slot = RING.lock().unwrap_or_else(|e| e.into_inner());
    if cap == 0 {
        ENABLED.store(false, Ordering::Release);
        *slot = None;
        return;
    }
    *slot = Some(Ring {
        cap,
        next_seq: 0,
        buf: VecDeque::with_capacity(cap),
    });
    ENABLED.store(true, Ordering::Release);
}

/// Whether the recorder is currently retaining records.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn append(kind: FlightKind, what: &str, dur_us: u64, trace: Option<TraceCtx>) {
    let t_us = epoch().elapsed().as_micros() as u64;
    let mut slot = RING.lock().unwrap_or_else(|e| e.into_inner());
    let Some(ring) = slot.as_mut() else { return };
    if ring.buf.len() == ring.cap {
        ring.buf.pop_front();
    }
    let seq = ring.next_seq;
    ring.next_seq += 1;
    ring.buf.push_back(FlightRecord {
        seq,
        t_us,
        kind,
        what: what.to_string(),
        dur_us,
        trace,
    });
}

/// Records a span close. When the recorder is disabled this is one relaxed
/// atomic load — the cost the obs-overhead bench budgets.
pub fn record_span_close(path: &str, dur_us: u64, trace: Option<TraceCtx>) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    append(FlightKind::Span, path, dur_us, trace);
}

/// Records an event or fault moment (same disabled-path discipline as
/// [`record_span_close`]).
pub fn record_event(kind: FlightKind, what: &str, trace: Option<TraceCtx>) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    append(kind, what, 0, trace);
}

/// Every retained record, oldest first.
pub fn dump() -> Vec<FlightRecord> {
    let slot = RING.lock().unwrap_or_else(|e| e.into_inner());
    match slot.as_ref() {
        Some(ring) => ring.buf.iter().cloned().collect(),
        None => Vec::new(),
    }
}

/// [`dump`] as a JSON array (the `flightdump` op payload).
pub fn dump_json() -> Json {
    Json::Arr(dump().iter().map(FlightRecord::to_json).collect())
}

/// The canonical replay-comparison form: only records carrying a trace
/// context, reduced to `(kind, what, trace)` and sorted. Wall-clock fields
/// are dropped, so two same-seed runs of the same sequential workload —
/// even at different pool sizes — render byte-identical stable dumps.
pub fn dump_stable_json() -> Json {
    let mut rows: Vec<(String, String, String)> = dump()
        .into_iter()
        .filter_map(|r| {
            let trace = r.trace?;
            Some((r.kind.name().to_string(), r.what, trace.render()))
        })
        .collect();
    rows.sort();
    Json::Arr(
        rows.into_iter()
            .map(|(kind, what, trace)| {
                Json::obj([
                    ("kind", Json::str(kind)),
                    ("what", Json::str(what)),
                    ("trace", Json::str(trace)),
                ])
            })
            .collect(),
    )
}

static PANIC_HOOK: Once = Once::new();

/// Installs (once) a panic hook that dumps the flight recorder to stderr
/// before the previous hook runs, so a crashing serve process leaves its
/// black box in the log. A disabled recorder dumps nothing.
pub fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if enabled() {
                let records = dump();
                eprintln!(
                    "[vega-obs] flight recorder dump ({} records, newest last):",
                    records.len()
                );
                for r in &records {
                    eprintln!("[vega-obs]   {}", r.to_json().render());
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracectx::TraceIdGen;

    /// One test: the ring, enable flag, and dumps are process-global.
    #[test]
    fn recorder_ring_semantics_and_stable_dump() {
        // Disabled: record calls are dropped.
        configure(0);
        assert!(!enabled());
        record_span_close("ignored", 1, None);
        assert!(dump().is_empty());

        // Enabled with capacity 4: oldest records are overwritten.
        configure(4);
        assert!(enabled());
        let mut gen = TraceIdGen::new(3);
        let ctx = gen.mint();
        for i in 0..6 {
            record_span_close(&format!("s{i}"), i, Some(ctx));
        }
        record_event(FlightKind::Fault, "serve.conn.drop#0", None);
        let records = dump();
        assert_eq!(records.len(), 4, "capacity bounds retention");
        // 7 appends into cap 4 keep seqs 3..=6, oldest first.
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert_eq!(records[0].what, "s3");
        assert_eq!(records[3].kind, FlightKind::Fault);
        assert_eq!(records[3].trace, None);

        // Every dump line parses as JSON and carries the trace when present.
        let json = dump_json();
        let arr = json.as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(
            arr[0].field("trace").unwrap().as_str().unwrap(),
            ctx.render()
        );

        // The stable dump drops the untraced fault record and all timing.
        let stable = dump_stable_json().render();
        assert!(!stable.contains("seq"), "{stable}");
        assert!(!stable.contains("t_us"), "{stable}");
        assert!(!stable.contains("serve.conn.drop"), "{stable}");
        assert!(stable.contains(&ctx.trace_hex()), "{stable}");

        // Reconfiguring clears retained records.
        configure(8);
        assert!(dump().is_empty());
        configure(0);
    }
}
