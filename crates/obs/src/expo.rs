//! Live metrics export: a full JSON snapshot and a Prometheus-style text
//! exposition, rendered from the same locked [`State`] so the two forms can
//! never disagree with each other.
//!
//! The JSON snapshot is the `{"op":"metrics"}` payload `vega-top` polls;
//! the text exposition is the conventional scrape format (counters,
//! gauges, and cumulative histogram buckets with `le` labels), so the
//! service can be wired into any Prometheus-compatible collector by
//! writing the `text` field to a file or HTTP response verbatim.

use crate::json::Json;
use crate::State;

/// Prometheus metric names are `[a-zA-Z_:][a-zA-Z0-9_:]*`; the obs registry
/// uses dotted paths. Map every unsupported byte to `_` and prefix `vega_`
/// so exported names are valid and collision-safe with other exporters.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("vega_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders an `f64` for the text exposition (finite shortest-roundtrip,
/// `NaN`/`+Inf`/`-Inf` in Prometheus spelling).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// One histogram as a JSON summary object.
fn hist_json(h: &crate::Histogram) -> Json {
    Json::obj([
        ("count", Json::num_u64(h.count())),
        ("sum", Json::num_f64(h.sum())),
        ("min", Json::num_f64(h.min())),
        ("max", Json::num_f64(h.max())),
        ("mean", Json::num_f64(h.mean())),
        ("p50", Json::num_f64(h.quantile(0.5))),
        ("p90", Json::num_f64(h.quantile(0.9))),
        ("p99", Json::num_f64(h.quantile(0.99))),
    ])
}

/// The full registry as one JSON object:
/// `{"counters":{…},"gauges":{…},"hists":{name:{count,sum,…,p99}}}`.
pub(crate) fn metrics_json(state: &State) -> Json {
    let counters = Json::Obj(
        state
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::num_u64(*v)))
            .collect(),
    );
    let gauges = Json::Obj(
        state
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::num_f64(*v)))
            .collect(),
    );
    let hists = Json::Obj(
        state
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), hist_json(h)))
            .collect(),
    );
    Json::obj([("counters", counters), ("gauges", gauges), ("hists", hists)])
}

/// The registry as Prometheus text exposition format.
pub(crate) fn prometheus(state: &State) -> String {
    let mut out = String::new();
    for (name, v) in &state.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &state.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", prom_f64(*v)));
    }
    for (name, h) in &state.hists {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for (i, &c) in h.counts().iter().enumerate() {
            cum += c;
            let le = match h.buckets().bounds().get(i) {
                Some(&b) => prom_f64(b),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n", prom_f64(h.sum())));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::json::Json;
    use crate::{Buckets, Obs};

    #[test]
    fn json_snapshot_mirrors_the_registry() {
        let obs = Obs::with_level(None);
        obs.counter_add("serve.requests", 3);
        obs.gauge_set("serve.queue_depth", 2.0);
        let buckets = Buckets::linear(0.0, 1.0, 4);
        for i in 0..8 {
            obs.observe_with("lat", &buckets, i as f64 / 8.0);
        }
        let m = obs.metrics_json();
        assert_eq!(
            m.field("counters")
                .unwrap()
                .field("serve.requests")
                .unwrap()
                .as_u64()
                .unwrap(),
            3
        );
        assert_eq!(
            m.field("gauges")
                .unwrap()
                .field("serve.queue_depth")
                .unwrap()
                .as_f64()
                .unwrap(),
            2.0
        );
        let lat = m.field("hists").unwrap().field("lat").unwrap();
        assert_eq!(lat.field("count").unwrap().as_u64().unwrap(), 8);
        let p50 = lat.field("p50").unwrap().as_f64().unwrap();
        let h = obs.histogram("lat").unwrap();
        assert_eq!(p50, h.quantile(0.5), "snapshot and registry agree");
        // The snapshot itself round-trips through the parser.
        assert_eq!(Json::parse(&m.render()).unwrap(), m);
    }

    #[test]
    fn prometheus_text_has_valid_names_and_cumulative_buckets() {
        let obs = Obs::with_level(None);
        obs.counter_add("serve.cache.hits", 5);
        obs.gauge_set("serve.inflight", 1.5);
        let buckets = Buckets::linear(0.0, 2.0, 2);
        for v in [0.5, 1.5, 99.0] {
            obs.observe_with("decode.step_seconds", &buckets, v);
        }
        let text = obs.prometheus_text();
        assert!(
            text.contains("# TYPE vega_serve_cache_hits counter\nvega_serve_cache_hits 5\n"),
            "{text}"
        );
        assert!(text.contains("vega_serve_inflight 1.5"), "{text}");
        // Buckets are cumulative and end at +Inf == count.
        assert!(
            text.contains("vega_decode_step_seconds_bucket{le=\"1.0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("vega_decode_step_seconds_bucket{le=\"2.0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("vega_decode_step_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("vega_decode_step_seconds_count 3"), "{text}");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad exposition line: {line}");
        }
    }
}
