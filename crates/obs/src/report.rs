//! Plain-text report: a flamegraph-style span tree plus metric tables.
//!
//! Rendering mirrors the aligned `| cell |` tables used by `vega-eval`'s
//! report module (reimplemented locally — `vega-obs` sits below every other
//! crate in the dependency graph and cannot import them).

use crate::State;
use std::collections::BTreeMap;
use std::time::Duration;

/// A tiny aligned-column table, matching the eval-report idiom.
struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[derive(Default)]
struct Node {
    count: u64,
    total: Duration,
    recorded: bool,
    children: BTreeMap<String, Node>,
}

fn insert(root: &mut Node, path: &str, count: u64, total: Duration) {
    let mut node = root;
    for seg in path.split('.') {
        node = node.children.entry(seg.to_string()).or_default();
    }
    node.count += count;
    node.total += total;
    node.recorded = true;
}

/// Fills in totals for synthesized intermediate nodes (a parent that was
/// never itself recorded shows the sum of its children).
fn fill_totals(node: &mut Node) -> Duration {
    let child_sum: Duration = node.children.values_mut().map(fill_totals).sum();
    if !node.recorded {
        node.total = child_sum;
    }
    node.total
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn render_node(
    name: &str,
    node: &Node,
    parent_total: Duration,
    depth: usize,
    table: &mut TextTable,
) {
    let label = format!("{}{}", "  ".repeat(depth), name);
    let pct = if parent_total > Duration::ZERO {
        format!(
            "{:.1}%",
            100.0 * node.total.as_secs_f64() / parent_total.as_secs_f64()
        )
    } else {
        "-".to_string()
    };
    let (count, mean) = if node.recorded && node.count > 0 {
        (node.count.to_string(), ms(node.total / node.count as u32))
    } else {
        ("-".to_string(), "-".to_string())
    };
    table.row(vec![label, count, ms(node.total), mean, pct]);
    for (child_name, child) in &node.children {
        render_node(child_name, child, node.total, depth + 1, table);
    }
}

pub(crate) fn render(state: &State) -> String {
    let mut out = String::new();

    out.push_str("== span tree ==\n");
    if state.spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        let mut root = Node::default();
        for (path, stat) in &state.spans {
            insert(&mut root, path, stat.count, stat.total);
        }
        let grand_total = fill_totals(&mut root);
        let mut table = TextTable::new(&["span", "count", "total ms", "mean ms", "of parent"]);
        for (name, node) in &root.children {
            render_node(name, node, grand_total, 0, &mut table);
        }
        out.push_str(&table.render());
    }

    if !state.counters.is_empty() {
        out.push_str("\n== counters ==\n");
        let mut table = TextTable::new(&["counter", "value"]);
        for (name, v) in &state.counters {
            table.row(vec![name.clone(), v.to_string()]);
        }
        out.push_str(&table.render());
    }

    if !state.gauges.is_empty() {
        out.push_str("\n== gauges ==\n");
        let mut table = TextTable::new(&["gauge", "value"]);
        for (name, v) in &state.gauges {
            table.row(vec![name.clone(), format!("{v:.4}")]);
        }
        out.push_str(&table.render());
    }

    if !state.hists.is_empty() {
        out.push_str("\n== histograms ==\n");
        let mut table = TextTable::new(&["histogram", "count", "mean", "p50", "p90", "p99", "max"]);
        for (name, h) in &state.hists {
            table.row(vec![
                name.clone(),
                h.count().to_string(),
                format!("{:.4}", h.mean()),
                format!("{:.4}", h.quantile(0.5)),
                format!("{:.4}", h.quantile(0.9)),
                format!("{:.4}", h.quantile(0.99)),
                format!("{:.4}", h.max()),
            ]);
        }
        out.push_str(&table.render());
    }

    if !state.curves.is_empty() {
        out.push_str("\n== training curves ==\n");
        let mut table =
            TextTable::new(&["curve", "epochs", "first loss", "final loss", "ex/s (last)"]);
        for (name, c) in &state.curves {
            let first = c.points.first();
            let last = c.points.last();
            table.row(vec![
                name.clone(),
                c.len().to_string(),
                first.map_or("-".into(), |p| format!("{:.4}", p.loss)),
                last.map_or("-".into(), |p| format!("{:.4}", p.loss)),
                last.map_or("-".into(), |p| format!("{:.1}", p.examples_per_sec())),
            ]);
        }
        out.push_str(&table.render());
    }

    out
}

#[cfg(test)]
mod tests {
    use crate::{Level, Obs};
    use std::time::Duration;

    #[test]
    fn report_shows_nested_spans_with_percentages() {
        let obs = Obs::with_level(None);
        {
            let _outer = obs.span("pipeline");
            {
                let _s1 = obs.span("stage1");
                std::thread::sleep(Duration::from_millis(2));
            }
            let _s2 = obs.span("stage2");
        }
        let report = obs.text_report();
        assert!(report.contains("== span tree =="), "{report}");
        assert!(report.contains("pipeline"), "{report}");
        assert!(report.contains("  stage1"), "indented child: {report}");
        assert!(report.contains("  stage2"), "indented child: {report}");
        assert!(report.contains('%'), "{report}");
    }

    #[test]
    fn report_includes_metric_sections_when_populated() {
        let obs = Obs::with_level(None);
        obs.counter_add("nn.train_steps", 7);
        obs.gauge_set("lr", 0.001);
        obs.observe("latency", 0.01);
        obs.curve_point(
            "finetune",
            crate::CurvePoint {
                epoch: 0,
                loss: 2.0,
                lr: 0.1,
                examples: 8,
                seconds: 0.1,
            },
        );
        let report = obs.text_report();
        for needle in [
            "== counters ==",
            "nn.train_steps",
            "== gauges ==",
            "== histograms ==",
            "p99",
            "== training curves ==",
            "finetune",
        ] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
    }

    #[test]
    fn empty_report_is_well_formed() {
        let obs = Obs::with_level(Some(Level::Info));
        let report = obs.text_report();
        assert!(report.contains("(no spans recorded)"));
    }
}
