//! The miniature compiler's intermediate representation.
//!
//! A small register-based linear IR with labels — just enough to express the
//! benchmark kernels and give the optimization pipeline (-O0 vs -O3) real
//! work to do.

use std::collections::HashMap;

/// Virtual register id.
pub type Reg = u32;
/// Branch label id.
pub type Label = u32;

/// Binary ALU operations (each maps to a generic ISD opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operator names
pub enum IrOp {
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl IrOp {
    /// The ISD opcode name this op selects through.
    pub fn isd(self) -> &'static str {
        match self {
            IrOp::Add => "ADD",
            IrOp::Sub => "SUB",
            IrOp::Mul => "MUL",
            IrOp::Div => "SDIV",
            IrOp::And => "AND",
            IrOp::Or => "OR",
            IrOp::Xor => "XOR",
            IrOp::Shl => "SHL",
            IrOp::Shr => "SRL",
        }
    }

    /// Constant evaluation.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            IrOp::Add => a.wrapping_add(b),
            IrOp::Sub => a.wrapping_sub(b),
            IrOp::Mul => a.wrapping_mul(b),
            IrOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            IrOp::And => a & b,
            IrOp::Or => a | b,
            IrOp::Xor => a ^ b,
            IrOp::Shl => a.wrapping_shl(b as u32 & 63),
            IrOp::Shr => ((a as u64) >> (b as u32 & 63)) as i64,
        })
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = value`
    Const {
        /// Destination.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = a ⊕ b`
    Bin {
        /// Operation.
        op: IrOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = mem[base + offset]`
    Load {
        /// Destination.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Constant byte offset (word-indexed in the simulator).
        offset: i64,
    },
    /// `mem[base + offset] = src`
    Store {
        /// Source.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Constant offset.
        offset: i64,
    },
    /// A branch target marker.
    LabelMark {
        /// Label id.
        label: Label,
    },
    /// Unconditional jump.
    Jump {
        /// Target label.
        target: Label,
    },
    /// `if (a ? b) goto target` (fallthrough otherwise).
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target label.
        target: Label,
    },
    /// Return a register's value.
    Ret {
        /// Returned register.
        src: Reg,
    },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. } | Inst::Bin { dst, .. } | Inst::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Registers this instruction reads.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Inst::Const { .. } | Inst::LabelMark { .. } | Inst::Jump { .. } => Vec::new(),
            Inst::Bin { a, b, .. } | Inst::Branch { a, b, .. } => vec![*a, *b],
            Inst::Load { base, .. } => vec![*base],
            Inst::Store { src, base, .. } => vec![*src, *base],
            Inst::Ret { src } => vec![*src],
        }
    }

    /// True for instructions with effects beyond their `def`.
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::Jump { .. }
                | Inst::Branch { .. }
                | Inst::Ret { .. }
                | Inst::LabelMark { .. }
        )
    }
}

/// An IR function (one benchmark kernel).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrFunction {
    /// Kernel name.
    pub name: String,
    /// Instructions in layout order.
    pub insts: Vec<Inst>,
}

impl IrFunction {
    /// Resolves label → instruction index.
    pub fn label_map(&self) -> HashMap<Label, usize> {
        self.insts
            .iter()
            .enumerate()
            .filter_map(|(i, inst)| match inst {
                Inst::LabelMark { label } => Some((*label, i)),
                _ => None,
            })
            .collect()
    }

    /// Number of times each register is defined (for conservative passes).
    pub fn def_counts(&self) -> HashMap<Reg, usize> {
        let mut m = HashMap::new();
        for inst in &self.insts {
            if let Some(d) = inst.def() {
                *m.entry(d).or_insert(0) += 1;
            }
        }
        m
    }
}

/// A convenience builder for writing kernels by hand.
#[derive(Debug, Default)]
pub struct IrBuilder {
    f: IrFunction,
    next_reg: Reg,
    next_label: Label,
}

impl IrBuilder {
    /// Starts a kernel named `name`.
    pub fn new(name: &str) -> Self {
        IrBuilder {
            f: IrFunction {
                name: name.to_string(),
                insts: Vec::new(),
            },
            next_reg: 0,
            next_label: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        self.next_reg += 1;
        self.next_reg - 1
    }

    /// Allocates a fresh label.
    pub fn label(&mut self) -> Label {
        self.next_label += 1;
        self.next_label - 1
    }

    /// `dst = value`
    pub fn constant(&mut self, value: i64) -> Reg {
        let dst = self.reg();
        self.f.insts.push(Inst::Const { dst, value });
        dst
    }

    /// `dst = a ⊕ b`
    pub fn bin(&mut self, op: IrOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.f.insts.push(Inst::Bin { op, dst, a, b });
        dst
    }

    /// Reassigns `dst = a ⊕ b` into an existing register (loop carried).
    pub fn bin_into(&mut self, dst: Reg, op: IrOp, a: Reg, b: Reg) {
        self.f.insts.push(Inst::Bin { op, dst, a, b });
    }

    /// `dst = mem[base+offset]`
    pub fn load(&mut self, base: Reg, offset: i64) -> Reg {
        let dst = self.reg();
        self.f.insts.push(Inst::Load { dst, base, offset });
        dst
    }

    /// `mem[base+offset] = src`
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) {
        self.f.insts.push(Inst::Store { src, base, offset });
    }

    /// Emits a label marker.
    pub fn mark(&mut self, label: Label) {
        self.f.insts.push(Inst::LabelMark { label });
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: Label) {
        self.f.insts.push(Inst::Jump { target });
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) {
        self.f.insts.push(Inst::Branch { cond, a, b, target });
    }

    /// Return.
    pub fn ret(&mut self, src: Reg) {
        self.f.insts.push(Inst::Ret { src });
    }

    /// Finishes the kernel.
    pub fn finish(self) -> IrFunction {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_labels_and_regs() {
        let mut b = IrBuilder::new("t");
        let l = b.label();
        let x = b.constant(1);
        b.mark(l);
        let y = b.bin(IrOp::Add, x, x);
        b.branch(Cond::Lt, y, x, l);
        b.ret(y);
        let f = b.finish();
        assert_eq!(f.label_map()[&l], 1);
        assert_eq!(f.insts.len(), 5);
        assert_eq!(f.def_counts()[&y], 1);
    }

    #[test]
    fn op_eval_and_isd() {
        assert_eq!(IrOp::Mul.eval(6, 7), Some(42));
        assert_eq!(IrOp::Div.eval(1, 0), None);
        assert_eq!(IrOp::Shr.eval(-1, 60), Some(15));
        assert_eq!(IrOp::Add.isd(), "ADD");
    }
}
