//! pass@1 regression testing: substitute a function, run the suite,
//! compare against the base compiler (paper §4.1.4).

use crate::vectors::{vectors_for, ArgSpec};
use vega_corpus::{ArchEnv, ArchSpec};
use vega_cpplite::{Function, Interp, Value};

/// Outcome of one regression run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressionOutcome {
    /// Every vector agreed with the reference — the function is *accurate*.
    Pass,
    /// Some vector disagreed or crashed; carries the first counterexample.
    Fail {
        /// Index of the failing vector.
        vector: usize,
        /// What the reference produced.
        expected: String,
        /// What the candidate produced (value or error).
        got: String,
    },
    /// The interface has no regression suite.
    NoSuite,
}

impl RegressionOutcome {
    /// True for [`RegressionOutcome::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, RegressionOutcome::Pass)
    }
}

/// Runs one function on one vector with a fresh environment.
fn run_one(
    f: &Function,
    args: &[ArgSpec],
    spec: &ArchSpec,
) -> Result<Value, vega_cpplite::EvalError> {
    let mut env = ArchEnv::new(spec);
    let vals: Vec<Value> = args.iter().map(|a| a.realize(&mut env)).collect();
    let mut interp = Interp::new(&mut env);
    interp.run_function(f, &vals)
}

/// Differential pass@1: `candidate` must agree with `reference` on every
/// vector where the reference succeeds.
pub fn regression_test(
    group: &str,
    candidate: &Function,
    reference: &Function,
    spec: &ArchSpec,
) -> RegressionOutcome {
    let Some(suite) = vectors_for(group, spec) else {
        return RegressionOutcome::NoSuite;
    };
    for (i, args) in suite.iter().enumerate() {
        let expected = match run_one(reference, args, spec) {
            Ok(v) => v,
            // Vectors the base compiler itself rejects are not part of the
            // observable contract.
            Err(_) => continue,
        };
        match run_one(candidate, args, spec) {
            Ok(got) if got == expected => {}
            Ok(got) => {
                return RegressionOutcome::Fail {
                    vector: i,
                    expected: expected.to_string(),
                    got: got.to_string(),
                }
            }
            Err(e) => {
                return RegressionOutcome::Fail {
                    vector: i,
                    expected: expected.to_string(),
                    got: format!("<error: {}>", e.message),
                }
            }
        }
    }
    RegressionOutcome::Pass
}

/// Convenience: the reference always passes against itself.
pub fn reference_self_check(group: &str, reference: &Function, spec: &ArchSpec) -> bool {
    regression_test(group, reference, reference, spec).passed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_corpus::{Corpus, CorpusConfig};
    use vega_cpplite::parse_function;

    #[test]
    fn every_reference_backend_function_passes_its_own_suite() {
        let c = Corpus::build(&CorpusConfig::tiny());
        for t in c.targets() {
            for (name, _, f) in t.backend.iter() {
                let out = regression_test(name, f, f, &t.spec);
                assert!(
                    out.passed(),
                    "{}::{name} self-check failed: {out:?}",
                    t.spec.name
                );
            }
        }
    }

    #[test]
    fn reference_functions_actually_execute() {
        // Guard against suites that "pass" because the reference errors on
        // every vector: each suite must have at least one vector where the
        // reference succeeds.
        let c = Corpus::build(&CorpusConfig::tiny());
        let rv = c.target("RISCV").unwrap();
        for (name, _, f) in rv.backend.iter() {
            let suite = vectors_for(name, &rv.spec).unwrap();
            let ok = suite.iter().any(|args| run_one(f, args, &rv.spec).is_ok());
            assert!(ok, "{name}: no vector executes successfully");
        }
    }

    #[test]
    fn wrong_value_fails_regression() {
        let c = Corpus::build(&CorpusConfig::tiny());
        let rv = c.target("RISCV").unwrap();
        let reference = rv.backend.function("getInstSizeInBytes").unwrap();
        let wrong =
            parse_function("unsigned getInstSizeInBytes(unsigned Opcode) { return 8; }").unwrap();
        let out = regression_test("getInstSizeInBytes", &wrong, reference, &rv.spec);
        assert!(!out.passed(), "{out:?}");
    }

    #[test]
    fn semantically_equal_variant_passes() {
        let c = Corpus::build(&CorpusConfig::tiny());
        let rv = c.target("RISCV").unwrap();
        let reference = rv.backend.function("isProfitableToDupForIfCvt").unwrap();
        // Different shape, same semantics.
        let head = reference.body.last().unwrap().head_line();
        // reference body is `return NumInstrs <= K;` — rebuild as if/else.
        let k: i64 = head
            .split("<= ")
            .nth(1)
            .and_then(|s| s.trim_end_matches(';').parse().ok())
            .expect("threshold");
        let variant = parse_function(&format!(
            "bool isProfitableToDupForIfCvt(int NumInstrs) {{ if (NumInstrs > {k}) {{ return false; }} return true; }}"
        ))
        .unwrap();
        let out = regression_test("isProfitableToDupForIfCvt", &variant, reference, &rv.spec);
        assert!(out.passed(), "{out:?}");
    }

    #[test]
    fn crashing_candidate_fails() {
        let c = Corpus::build(&CorpusConfig::tiny());
        let rv = c.target("RISCV").unwrap();
        let reference = rv.backend.function("getRelocType").unwrap();
        let crasher = parse_function(
            "unsigned getRelocType(const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) { return ELF::R_ARM_NONE; }",
        )
        .unwrap();
        // References another target's reloc → unknown path → error → fail.
        let out = regression_test("getRelocType", &crasher, reference, &rv.spec);
        assert!(!out.passed());
    }
}
