//! The miniature compiler: optimization pipeline + backend-driven lowering +
//! cycle simulation.
//!
//! Lowering consults the backend's *interface functions* — interpreted
//! cpplite ASTs, which may be reference implementations or VEGA-generated
//! ones — exactly where LLVM would: instruction selection (`selectOpcode`),
//! immediate legality/cost (`isLegalImmediate`, `getImmCost`), peephole
//! fusion (`foldImmediate`, `combineMulAdd`), latencies (`getInstrLatency`)
//! and issue width (`getIssueWidth`). The simulator then executes the kernel
//! and charges each instruction its compiled cost, giving the cycle counts
//! behind Fig. 10.

use crate::ir::{Inst, IrFunction, IrOp};
use std::collections::HashMap;
use vega_corpus::{isd_value, ArchEnv, ArchSpec, Backend};
use vega_cpplite::{EvalError, Interp, Value};

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Direct translation.
    O0,
    /// Constant folding, DCE, strength reduction, immediate folding, MAC
    /// fusion.
    O3,
}

/// Error during compilation (missing/broken interface functions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Calls backend interface functions through the interpreter.
pub struct BackendVm<'a> {
    spec: &'a ArchSpec,
    backend: &'a Backend,
}

impl<'a> BackendVm<'a> {
    /// Creates a VM over a backend.
    pub fn new(spec: &'a ArchSpec, backend: &'a Backend) -> Self {
        BackendVm { spec, backend }
    }

    /// Calls `name(args)`, erroring if the backend lacks the function.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        let f = self
            .backend
            .function(name)
            .ok_or_else(|| EvalError::new(format!("backend lacks `{name}`")))?;
        let mut env = ArchEnv::new(self.spec);
        let mut interp = Interp::new(&mut env);
        interp.run_function(f, args)
    }

    /// Calls an optional hook; `None` when the backend lacks it.
    pub fn call_opt(&self, name: &str, args: &[Value]) -> Option<Result<Value, EvalError>> {
        self.backend.function(name)?;
        Some(self.call(name, args))
    }

    fn int(&self, name: &str, args: &[Value]) -> Result<i64, CompileError> {
        self.call(name, args)
            .and_then(|v| v.as_int())
            .map_err(|e| CompileError {
                message: format!("{name}: {}", e.message),
            })
    }
}

/// A compiled kernel: the (possibly optimized) IR plus per-instruction costs.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// IR after optimization.
    pub ir: IrFunction,
    /// Cycle cost charged per instruction index.
    pub cost: Vec<f64>,
    /// Static machine-instruction count.
    pub machine_insts: usize,
}

/// Compiles a kernel for a backend at an optimization level.
///
/// # Errors
/// Returns [`CompileError`] when a required interface function is missing or
/// crashes during lowering — a miscompiled backend fails to build programs,
/// which the robustness experiment counts as a regression failure.
pub fn compile(
    kernel: &IrFunction,
    vm: &BackendVm<'_>,
    level: OptLevel,
) -> Result<CompiledKernel, CompileError> {
    let mut ir = kernel.clone();
    if level == OptLevel::O3 {
        constant_fold(&mut ir);
        dead_code_elim(&mut ir);
    }
    lower(&ir, vm, level)
}

/// The constant value of each single-def `Const` register.
fn const_regs(ir: &IrFunction) -> HashMap<u32, i64> {
    let defs = ir.def_counts();
    ir.insts
        .iter()
        .filter_map(|i| match i {
            Inst::Const { dst, value } if defs.get(dst) == Some(&1) => Some((*dst, *value)),
            _ => None,
        })
        .collect()
}

/// Folds `Bin` over two known constants into `Const` (iterated to a fixed
/// point so chains collapse).
fn constant_fold(ir: &mut IrFunction) {
    loop {
        let consts = const_regs(ir);
        let defs = ir.def_counts();
        let mut changed = false;
        for inst in ir.insts.iter_mut() {
            if let Inst::Bin { op, dst, a, b } = inst {
                if defs.get(dst) == Some(&1) {
                    if let (Some(&va), Some(&vb)) = (consts.get(a), consts.get(b)) {
                        if let Some(v) = op.eval(va, vb) {
                            *inst = Inst::Const {
                                dst: *dst,
                                value: v,
                            };
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Removes side-effect-free definitions of registers that are never read.
fn dead_code_elim(ir: &mut IrFunction) {
    loop {
        let mut used: HashMap<u32, usize> = HashMap::new();
        for inst in &ir.insts {
            for u in inst.uses() {
                *used.entry(u).or_insert(0) += 1;
            }
        }
        let before = ir.insts.len();
        ir.insts.retain(|inst| {
            inst.has_side_effect()
                || inst
                    .def()
                    .map(|d| used.get(&d).copied().unwrap_or(0) > 0)
                    .unwrap_or(true)
        });
        if ir.insts.len() == before {
            break;
        }
    }
}

/// Cycle penalty for expanding an unselected operation (libcall/loop).
const EXPANSION_COST: f64 = 18.0;

/// Lowers IR to machine instructions (as costs) using the backend hooks.
fn lower(
    ir: &IrFunction,
    vm: &BackendVm<'_>,
    level: OptLevel,
) -> Result<CompiledKernel, CompileError> {
    let consts = const_regs(ir);
    let mut cost = Vec::with_capacity(ir.insts.len());
    let mut machine_insts = 0usize;

    let opcode_for = |isd: &str| -> Result<i64, CompileError> {
        let v = isd_value(isd).unwrap_or(0);
        vm.int("selectOpcode", &[Value::Int(v)])
    };
    let latency_of = |opcode: i64| -> Result<f64, CompileError> {
        if opcode == 0 {
            return Ok(EXPANSION_COST);
        }
        Ok(vm.int("getInstrLatency", &[Value::Int(opcode)])? as f64)
    };
    let addi_opcode: Option<i64> = vm
        .spec
        .instrs
        .iter()
        .find(|i| i.mnemonic == "addi")
        .and_then(|i| ArchEnv::new(vm.spec).instr_value(&i.name));

    for (idx, inst) in ir.insts.iter().enumerate() {
        let mut c = 0.0f64;
        match inst {
            Inst::Const { value, .. } => {
                // Materialization: one ALU-immediate op if legal, plus the
                // target-specific extra cost otherwise.
                let legal = vm.int("isLegalImmediate", &[Value::Int(*value)])? != 0;
                c += 1.0;
                machine_insts += 1;
                if !legal {
                    let extra = vm.int("getImmCost", &[Value::Int(*value)])?.max(0);
                    c += extra as f64;
                    machine_insts += extra as usize;
                }
            }
            Inst::Bin { op, a, b, .. } => {
                let mut handled = false;
                if level == OptLevel::O3 {
                    // Strength reduction: multiply by a power-of-two constant
                    // becomes a shift.
                    if *op == IrOp::Mul {
                        let pow2 = consts
                            .get(b)
                            .or_else(|| consts.get(a))
                            .is_some_and(|v| *v > 0 && v.count_ones() == 1);
                        if pow2 {
                            let shl = opcode_for("SHL")?;
                            if shl != 0 {
                                c += latency_of(shl)?;
                                machine_insts += 1;
                                handled = true;
                            }
                        }
                    }
                    // Immediate folding: ALU with a small constant operand
                    // uses the immediate form and skips materialization.
                    if !handled {
                        if let Some(&imm) = consts.get(b) {
                            let opc = opcode_for(op.isd())?;
                            if opc != 0 {
                                let folded = vm
                                    .call_opt("foldImmediate", &[Value::Int(opc), Value::Int(imm)])
                                    .transpose()
                                    .map_err(|e| CompileError { message: e.message })?
                                    .map(|v| v.as_int().unwrap_or(0))
                                    .unwrap_or(0);
                                if folded != 0 || addi_opcode == Some(opc) {
                                    let target = if folded != 0 { folded } else { opc };
                                    c += latency_of(target)?;
                                    machine_insts += 1;
                                    handled = true;
                                }
                            }
                        }
                    }
                    // MAC fusion: `t = a*b; d = t + x` charged as one MAC on
                    // targets that have it (the add sees the mul's cost drop).
                    if !handled && *op == IrOp::Add {
                        if let Some(Inst::Bin {
                            op: IrOp::Mul,
                            dst: mdst,
                            ..
                        }) = idx.checked_sub(1).map(|p| &ir.insts[p])
                        {
                            if inst.uses().contains(mdst) {
                                let mul_opc = opcode_for("MUL")?;
                                let add_opc = opcode_for("ADD")?;
                                let mac = vm
                                    .call_opt(
                                        "combineMulAdd",
                                        &[Value::Int(mul_opc), Value::Int(add_opc)],
                                    )
                                    .transpose()
                                    .map_err(|e| CompileError { message: e.message })?
                                    .map(|v| v.as_int().unwrap_or(0))
                                    .unwrap_or(0);
                                if mac != 0 {
                                    // The pair costs one MAC; the add itself
                                    // becomes free (mul already charged).
                                    c += 0.0;
                                    handled = true;
                                }
                            }
                        }
                    }
                }
                if !handled {
                    let opc = opcode_for(op.isd())?;
                    c += latency_of(opc)?;
                    machine_insts += 1;
                }
            }
            Inst::Load { .. } => {
                let opc = opcode_for("LOAD")?;
                c += latency_of(opc)?;
                machine_insts += 1;
            }
            Inst::Store { .. } => {
                let opc = opcode_for("STORE")?;
                c += latency_of(opc)?;
                machine_insts += 1;
            }
            Inst::Jump { .. } => {
                let opc = opcode_for("BR")?;
                c += latency_of(opc)?;
                machine_insts += 1;
            }
            Inst::Branch { .. } => {
                let opc = opcode_for("BRCOND")?;
                c += latency_of(opc)?;
                machine_insts += 1;
            }
            Inst::Ret { .. } => {
                let opc = opcode_for("RET")?;
                c += latency_of(opc)?;
                machine_insts += 1;
            }
            Inst::LabelMark { .. } => {}
        }
        cost.push(c);
    }
    Ok(CompiledKernel {
        ir: ir.clone(),
        cost,
        machine_insts,
    })
}

/// Result of simulating a compiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The kernel's return value.
    pub result: i64,
    /// Total cycles charged (scaled by issue width).
    pub cycles: f64,
    /// Dynamic instruction count.
    pub executed: usize,
}

/// Simulation memory size (words).
const MEM_WORDS: usize = 4096;
/// Execution step cap.
const MAX_STEPS: usize = 2_000_000;

/// Executes a compiled kernel, charging each instruction its compiled cost.
///
/// # Errors
/// Returns [`CompileError`] on out-of-bounds memory, missing labels, or
/// non-termination.
pub fn simulate(kernel: &CompiledKernel, vm: &BackendVm<'_>) -> Result<SimResult, CompileError> {
    let labels = kernel.ir.label_map();
    let mut regs: HashMap<u32, i64> = HashMap::new();
    let mut mem = vec![0i64; MEM_WORDS];
    let mut pc = 0usize;
    let mut cycles = 0.0f64;
    let mut executed = 0usize;
    let issue_width = vm
        .call_opt("getIssueWidth", &[])
        .transpose()
        .map_err(|e| CompileError { message: e.message })?
        .and_then(|v| v.as_int().ok())
        .unwrap_or(1)
        .max(1) as f64;

    let read = |regs: &HashMap<u32, i64>, r: u32| regs.get(&r).copied().unwrap_or(0);
    for _ in 0..MAX_STEPS {
        let Some(inst) = kernel.ir.insts.get(pc) else {
            return Err(CompileError {
                message: "fell off the end".into(),
            });
        };
        cycles += kernel.cost[pc];
        executed += 1;
        match inst {
            Inst::Const { dst, value } => {
                regs.insert(*dst, *value);
            }
            Inst::Bin { op, dst, a, b } => {
                let v = op
                    .eval(read(&regs, *a), read(&regs, *b))
                    .ok_or_else(|| CompileError {
                        message: "division by zero".into(),
                    })?;
                regs.insert(*dst, v);
            }
            Inst::Load { dst, base, offset } => {
                let addr = (read(&regs, *base) + offset) as usize;
                let v = *mem.get(addr).ok_or_else(|| CompileError {
                    message: "load out of bounds".into(),
                })?;
                regs.insert(*dst, v);
            }
            Inst::Store { src, base, offset } => {
                let addr = (read(&regs, *base) + offset) as usize;
                let slot = mem.get_mut(addr).ok_or_else(|| CompileError {
                    message: "store out of bounds".into(),
                })?;
                *slot = read(&regs, *src);
            }
            Inst::LabelMark { .. } => {}
            Inst::Jump { target } => {
                pc = *labels.get(target).ok_or_else(|| CompileError {
                    message: "missing label".into(),
                })?;
                continue;
            }
            Inst::Branch { cond, a, b, target } => {
                if cond.eval(read(&regs, *a), read(&regs, *b)) {
                    pc = *labels.get(target).ok_or_else(|| CompileError {
                        message: "missing label".into(),
                    })?;
                    continue;
                }
            }
            Inst::Ret { src } => {
                return Ok(SimResult {
                    result: read(&regs, *src),
                    cycles: cycles / issue_width,
                    executed,
                });
            }
        }
        pc += 1;
    }
    Err(CompileError {
        message: "step limit exceeded".into(),
    })
}

/// Compiles and runs a kernel, returning the simulation result.
///
/// # Errors
/// Propagates compile and simulation failures.
pub fn run_kernel(
    kernel: &IrFunction,
    vm: &BackendVm<'_>,
    level: OptLevel,
) -> Result<SimResult, CompileError> {
    let compiled = compile(kernel, vm, level)?;
    simulate(&compiled, vm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmark_suite;
    use vega_corpus::{Corpus, CorpusConfig};

    fn rv_vm(c: &Corpus) -> (&ArchSpec, &Backend) {
        let t = c.target("RISCV").unwrap();
        (&t.spec, &t.backend)
    }

    #[test]
    fn o3_is_correct_and_not_slower() {
        let c = Corpus::build(&CorpusConfig::tiny());
        let (spec, backend) = rv_vm(&c);
        let vm = BackendVm::new(spec, backend);
        for kernel in benchmark_suite() {
            let r0 = run_kernel(&kernel, &vm, OptLevel::O0).unwrap();
            let r3 = run_kernel(&kernel, &vm, OptLevel::O3).unwrap();
            assert_eq!(r0.result, r3.result, "{} result changed", kernel.name);
            assert!(
                r3.cycles <= r0.cycles + 1e-9,
                "{}: O3 slower ({} vs {})",
                kernel.name,
                r3.cycles,
                r0.cycles
            );
        }
    }

    #[test]
    fn o3_actually_speeds_up_some_kernel() {
        let c = Corpus::build(&CorpusConfig::tiny());
        let (spec, backend) = rv_vm(&c);
        let vm = BackendVm::new(spec, backend);
        let mut any_speedup = false;
        for kernel in benchmark_suite() {
            let r0 = run_kernel(&kernel, &vm, OptLevel::O0).unwrap();
            let r3 = run_kernel(&kernel, &vm, OptLevel::O3).unwrap();
            if r3.cycles < r0.cycles * 0.95 {
                any_speedup = true;
            }
        }
        assert!(any_speedup, "O3 never speeds anything up");
    }

    #[test]
    fn missing_interface_function_fails_compilation() {
        let c = Corpus::build(&CorpusConfig::tiny());
        let t = c.target("RISCV").unwrap();
        let mut broken = t.backend.clone();
        let stub = vega_cpplite::parse_function(
            "unsigned selectOpcode(unsigned Opcode) { return nosuchthing(Opcode); }",
        )
        .unwrap();
        broken.replace("selectOpcode", stub);
        let vm = BackendVm::new(&t.spec, &broken);
        let kernel = &benchmark_suite()[0];
        assert!(run_kernel(kernel, &vm, OptLevel::O0).is_err());
    }

    #[test]
    fn hexagon_mac_fusion_beats_no_mac_on_mac_kernel() {
        let c = Corpus::build(&CorpusConfig::tiny());
        let hex = c.target("Hexagon").unwrap();
        let vm = BackendVm::new(&hex.spec, &hex.backend);
        let kernel = benchmark_suite()
            .into_iter()
            .find(|k| k.name == "dotprod")
            .unwrap();
        let r0 = run_kernel(&kernel, &vm, OptLevel::O0).unwrap();
        let r3 = run_kernel(&kernel, &vm, OptLevel::O3).unwrap();
        assert!(r3.cycles < r0.cycles, "MAC fusion gave no win");
        assert_eq!(r0.result, r3.result);
    }
}
