//! `vega-minicc`: the miniature compiler and evaluation substrate.
//!
//! Stands in for the paper's LLVM build + regression tests + simulators:
//!
//! * [`regression_test`] — pass@1: a generated function is substituted into
//!   the backend and must agree with the reference on the group's regression
//!   suite ([`vectors_for`]), differential-testing style;
//! * [`IrFunction`]/[`IrBuilder`] — a small register IR, with
//!   [`benchmark_suite`] providing Embench-style kernels;
//! * [`compile`]/[`simulate`]/[`run_kernel`] — the backend-driven compiler
//!   (-O0/-O3) and cycle simulator behind Fig. 10: instruction selection,
//!   immediate folding, strength reduction and MAC fusion all route through
//!   the backend's (interpreted) interface functions.
//!
//! # Examples
//! ```
//! use vega_corpus::{Corpus, CorpusConfig};
//! use vega_minicc::{benchmark_suite, run_kernel, BackendVm, OptLevel};
//! let corpus = Corpus::build(&CorpusConfig::tiny());
//! let rv = corpus.target("RISCV").unwrap();
//! let vm = BackendVm::new(&rv.spec, &rv.backend);
//! let kernel = &benchmark_suite()[0];
//! let o0 = run_kernel(kernel, &vm, OptLevel::O0).unwrap();
//! let o3 = run_kernel(kernel, &vm, OptLevel::O3).unwrap();
//! assert_eq!(o0.result, o3.result);
//! assert!(o3.cycles <= o0.cycles);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compiler;
mod ir;
mod regression;
mod suite;
mod vectors;

pub use compiler::{
    compile, run_kernel, simulate, BackendVm, CompileError, CompiledKernel, OptLevel, SimResult,
};
pub use ir::{Cond, Inst, IrBuilder, IrFunction, IrOp, Label, Reg};
pub use regression::{reference_self_check, regression_test, RegressionOutcome};
pub use suite::{
    benchmark_suite, bubble, crc_mix, dotprod, fib, memset_stride, poly_eval, shifty, vecsum,
};
pub use vectors::{vectors_for, ArgSpec};
