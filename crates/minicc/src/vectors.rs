//! Regression test vectors, one suite per interface-function group.
//!
//! pass@1 substitutes a generated function into the backend and runs the
//! regression tests (paper §4.1.4). Here a regression test is differential:
//! the generated function must agree with the reference implementation on
//! every vector in the suite. Vectors are derived from the target's spec so
//! they cover all fixups, opcodes, value types, boundary immediates, etc.

use vega_corpus::{isd_value, ArchEnv, ArchSpec, ObjData, GENERIC_FIXUPS, ISD_OPCODES};
use vega_cpplite::Value;

/// A symbolic argument that is realized against a fresh [`ArchEnv`] per run.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSpec {
    /// Plain integer.
    Int(i64),
    /// String (assembly names).
    Str(String),
    /// An `MCFixup` with the given kind value.
    Fixup {
        /// Fixup kind value.
        kind: i64,
    },
    /// An `MCValue` with the given access-variant value.
    McValue {
        /// Modifier value (0 = `VK_None`).
        modifier: i64,
    },
    /// A machine instruction.
    Inst {
        /// Target opcode value.
        opcode: i64,
        /// Operand registers.
        regs: Vec<i64>,
        /// Immediate operand.
        imm: i64,
    },
    /// A `MachineFunction` context.
    Mf {
        /// Frame-pointer requirement.
        has_fp: bool,
    },
}

impl ArgSpec {
    /// Realizes the argument in `env`.
    pub fn realize(&self, env: &mut ArchEnv<'_>) -> Value {
        match self {
            ArgSpec::Int(v) => Value::Int(*v),
            ArgSpec::Str(s) => Value::Str(s.clone()),
            ArgSpec::Fixup { kind } => env.alloc(ObjData::Fixup {
                kind: *kind,
                offset: 0,
            }),
            ArgSpec::McValue { modifier } => env.alloc(ObjData::McValue {
                modifier: *modifier,
            }),
            ArgSpec::Inst { opcode, regs, imm } => env.alloc(ObjData::Inst {
                opcode: *opcode,
                regs: regs.clone(),
                imm: *imm,
            }),
            ArgSpec::Mf { has_fp } => env.alloc(ObjData::MachineFunction { has_fp: *has_fp }),
        }
    }
}

/// Interesting signed immediates spanning every field width in the corpus.
fn imm_probe_set() -> Vec<i64> {
    let mut v = vec![0, 1, -1, 7, -8, 100];
    for bits in [8u32, 12, 13, 16, 20, 32] {
        let half = 1i64 << (bits - 1);
        v.extend([half - 1, half, -half, -half - 1]);
    }
    v.sort_unstable();
    v.dedup();
    v
}

/// All target opcode values (plus 0 and an unknown value).
fn opcode_values(env: &ArchEnv<'_>, spec: &ArchSpec) -> Vec<i64> {
    let mut v: Vec<i64> = spec
        .instrs
        .iter()
        .filter_map(|i| env.instr_value(&i.name))
        .collect();
    v.push(0);
    v.push(9_999);
    v
}

/// All fixup kind values: generic + target.
fn fixup_values(spec: &ArchSpec) -> Vec<i64> {
    let mut v: Vec<i64> = (0..GENERIC_FIXUPS.len() as i64).collect();
    v.extend(spec.fixups.iter().filter_map(|f| spec.fixup_value(&f.name)));
    v.push(200); // unknown kind
    v
}

/// The regression suite for one interface function, or `None` for unknown
/// interfaces.
pub fn vectors_for(group: &str, spec: &ArchSpec) -> Option<Vec<Vec<ArgSpec>>> {
    let env = ArchEnv::new(spec);
    let isds: Vec<i64> = ISD_OPCODES
        .iter()
        .filter_map(|o| isd_value(o))
        .chain([0, 101, 103, 55])
        .collect();
    let opcodes = opcode_values(&env, spec);
    let imms = imm_probe_set();
    let fixups = fixup_values(spec);

    let suite: Vec<Vec<ArgSpec>> = match group {
        "selectOpcode" | "getOperationAction" | "getSelectOpcode" => {
            isds.iter().map(|&o| vec![ArgSpec::Int(o)]).collect()
        }
        "isLegalImmediate" | "getImmCost" => imms.iter().map(|&v| vec![ArgSpec::Int(v)]).collect(),
        "getAddrMode" => {
            let mut v = Vec::new();
            for &o in &opcodes {
                for &i in &[0i64, 4, 2047, 2048, -2048, 40000, -40000] {
                    v.push(vec![ArgSpec::Int(o), ArgSpec::Int(i)]);
                }
            }
            v
        }
        "isTruncateFree" => {
            let mut v = Vec::new();
            for a in 0..=5i64 {
                for b in 0..=5i64 {
                    v.push(vec![ArgSpec::Int(a), ArgSpec::Int(b)]);
                }
            }
            v
        }
        "getRegClassFor" => (0..=6i64).map(|v| vec![ArgSpec::Int(v)]).collect(),
        "getSpillSize" => (0..=4i64).map(|v| vec![ArgSpec::Int(v)]).collect(),
        "getPointerRegClass" | "getReservedRegs" | "getIssueWidth" | "getCommentString"
        | "getRegisterPrefix" => vec![vec![]],
        "getFrameRegister" => vec![
            vec![ArgSpec::Mf { has_fp: false }],
            vec![ArgSpec::Mf { has_fp: true }],
        ],
        "isCalleeSavedReg" => (0..72i64).map(|r| vec![ArgSpec::Int(r)]).collect(),
        "foldImmediate" => {
            let mut v = Vec::new();
            for &o in &opcodes {
                for &i in &[0i64, 100, 5000, -5000, 70000] {
                    v.push(vec![ArgSpec::Int(o), ArgSpec::Int(i)]);
                }
            }
            v
        }
        "combineMulAdd" | "getOperandLatency" => {
            let mut v = Vec::new();
            for &a in &opcodes {
                for &b in opcodes.iter().take(6) {
                    v.push(vec![ArgSpec::Int(a), ArgSpec::Int(b)]);
                }
            }
            v
        }
        "isHardwareLoopProfitable" => {
            let mut v = Vec::new();
            for &t in &[0i64, 1, 2, 10, 1000] {
                for &n in &[1i64, 16, 32, 33, 64, 65] {
                    v.push(vec![ArgSpec::Int(t), ArgSpec::Int(n)]);
                }
            }
            v
        }
        "isProfitableToHoist" => {
            let mut v = Vec::new();
            for &o in &opcodes {
                for d in 0..5i64 {
                    v.push(vec![ArgSpec::Int(o), ArgSpec::Int(d)]);
                }
            }
            v
        }
        "isProfitableToDupForIfCvt" => (0..9i64).map(|n| vec![ArgSpec::Int(n)]).collect(),
        "getInstrLatency"
        | "getNumMicroOps"
        | "isSchedulingBoundary"
        | "getRelaxedOpcode"
        | "mayNeedRelaxation"
        | "getInstSizeInBytes" => opcodes.iter().map(|&o| vec![ArgSpec::Int(o)]).collect(),
        "getRelocType" => {
            let mut v = Vec::new();
            let mut modifiers = vec![0i64];
            modifiers.extend(1..=spec.variant_kinds.len() as i64);
            for &k in &fixups {
                for &pcrel in &[0i64, 1] {
                    for &m in &modifiers {
                        v.push(vec![
                            ArgSpec::McValue { modifier: m },
                            ArgSpec::Fixup { kind: k },
                            ArgSpec::Int(pcrel),
                        ]);
                    }
                }
            }
            v
        }
        "applyFixup" => {
            let mut v = Vec::new();
            for &k in &fixups {
                for &val in &[0i64, 0x1234_5678, -4, 0xffff, 1 << 20] {
                    v.push(vec![ArgSpec::Int(k), ArgSpec::Int(val)]);
                }
            }
            v
        }
        "getFixupKindInfo" => fixups.iter().map(|&k| vec![ArgSpec::Int(k)]).collect(),
        "encodeInstruction" => opcodes
            .iter()
            .map(|&o| {
                vec![ArgSpec::Inst {
                    opcode: o,
                    regs: vec![1, 2],
                    imm: 5,
                }]
            })
            .collect(),
        "parseRegister" => {
            let mut names: Vec<String> = ["sp", "fp", "ra", "lr", "zz"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let p = spec.regs[0].prefix.to_lowercase();
            names.push(format!("{p}0"));
            names.push(format!("{p}1"));
            names.into_iter().map(|n| vec![ArgSpec::Str(n)]).collect()
        }
        "matchMnemonic" => {
            let mut m: Vec<String> = spec.instrs.iter().map(|i| i.mnemonic.clone()).collect();
            m.push("bogus".to_string());
            m.into_iter().map(|n| vec![ArgSpec::Str(n)]).collect()
        }
        "isValidAsmImmediate" => {
            let mut v = Vec::new();
            for &i in imms.iter().take(12) {
                for &k in &fixups {
                    v.push(vec![ArgSpec::Int(i), ArgSpec::Int(k)]);
                }
            }
            v
        }
        "decodeInstruction" => {
            let mut v: Vec<Vec<ArgSpec>> = spec
                .instrs
                .iter()
                .map(|i| vec![ArgSpec::Int(i64::from(i.opcode) | (7 << 8))])
                .collect();
            v.push(vec![ArgSpec::Int(255)]);
            v
        }
        "decodeGPRRegisterClass" => (0..40i64).map(|r| vec![ArgSpec::Int(r)]).collect(),
        "getDecodeSize" => (0..8i64)
            .chain([0x73, 0xff])
            .map(|b| vec![ArgSpec::Int(b)])
            .collect(),
        _ => return None,
    };
    Some(suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_corpus::targets::eval_targets;

    #[test]
    fn all_known_groups_have_vectors() {
        let spec = &eval_targets()[0];
        for bp in vega_corpus::blueprints::all_blueprints() {
            assert!(
                vectors_for(bp.name, spec).is_some(),
                "{} has no regression vectors",
                bp.name
            );
        }
        assert!(vectors_for("noSuchInterface", spec).is_none());
    }

    #[test]
    fn reloc_vectors_cover_all_fixups_and_modes() {
        let spec = &eval_targets()[0];
        let v = vectors_for("getRelocType", spec).unwrap();
        // fixups × pcrel × modifiers.
        let fixup_count = GENERIC_FIXUPS.len() + spec.fixups.len() + 1;
        assert_eq!(v.len(), fixup_count * 2 * (1 + spec.variant_kinds.len()));
    }

    #[test]
    fn args_realize_against_env() {
        let spec = &eval_targets()[0];
        let mut env = ArchEnv::new(spec);
        let v = ArgSpec::Fixup { kind: 64 }.realize(&mut env);
        assert!(matches!(v, Value::Handle(_)));
        assert_eq!(ArgSpec::Int(7).realize(&mut env), Value::Int(7));
    }
}
