//! The built-in benchmark suite (the Fig. 10 workload).
//!
//! Small kernels in the spirit of Embench / the PULP regression suite:
//! iterative Fibonacci, vector sum, dot product, CRC-style bit mixing,
//! bubble sort, polynomial evaluation, memset/strided store, and a
//! divisions-and-shifts kernel. Each stresses a different optimization
//! (constant folding, immediate folding, strength reduction, MAC fusion).

use crate::ir::{Cond, IrBuilder, IrFunction, IrOp};

/// All benchmark kernels.
pub fn benchmark_suite() -> Vec<IrFunction> {
    vec![
        fib(18),
        vecsum(48),
        dotprod(32),
        crc_mix(40),
        bubble(12),
        poly_eval(24),
        memset_stride(64),
        shifty(36),
    ]
}

/// Iterative Fibonacci.
pub fn fib(n: i64) -> IrFunction {
    let mut b = IrBuilder::new("fib");
    let a = b.constant(0);
    let bb = b.constant(1);
    let i = b.constant(0);
    let limit = b.constant(n);
    let one = b.constant(1);
    let zero = b.constant(0);
    let loop_top = b.label();
    let done = b.label();
    b.mark(loop_top);
    b.branch(Cond::Ge, i, limit, done);
    let t = b.bin(IrOp::Add, a, bb);
    b.bin_into(a, IrOp::Add, bb, zero); // a = b
    b.bin_into(bb, IrOp::Add, t, zero); // b = t
    b.bin_into(i, IrOp::Add, i, one);
    b.jump(loop_top);
    b.mark(done);
    b.ret(bb);
    b.finish()
}

/// Sum a[0..n] after initializing a[i] = i*3.
pub fn vecsum(n: i64) -> IrFunction {
    let mut b = IrBuilder::new("vecsum");
    let base = b.constant(16);
    let i = b.constant(0);
    let limit = b.constant(n);
    let one = b.constant(1);
    let three = b.constant(3);
    let init_top = b.label();
    let init_done = b.label();
    b.mark(init_top);
    b.branch(Cond::Ge, i, limit, init_done);
    let v = b.bin(IrOp::Mul, i, three);
    let addr = b.bin(IrOp::Add, base, i);
    b.store(v, addr, 0);
    b.bin_into(i, IrOp::Add, i, one);
    b.jump(init_top);
    b.mark(init_done);

    let sum = b.constant(0);
    let j = b.constant(0);
    let sum_top = b.label();
    let sum_done = b.label();
    b.mark(sum_top);
    b.branch(Cond::Ge, j, limit, sum_done);
    let addr2 = b.bin(IrOp::Add, base, j);
    let x = b.load(addr2, 0);
    b.bin_into(sum, IrOp::Add, sum, x);
    b.bin_into(j, IrOp::Add, j, one);
    b.jump(sum_top);
    b.mark(sum_done);
    b.ret(sum);
    b.finish()
}

/// Dot product of two strided vectors — the MAC-fusion showcase.
pub fn dotprod(n: i64) -> IrFunction {
    let mut b = IrBuilder::new("dotprod");
    let xs = b.constant(64);
    let ys = b.constant(512);
    let i = b.constant(0);
    let limit = b.constant(n);
    let one = b.constant(1);
    let seven = b.constant(7);
    let five = b.constant(5);
    let init_top = b.label();
    let init_done = b.label();
    b.mark(init_top);
    b.branch(Cond::Ge, i, limit, init_done);
    let xv = b.bin(IrOp::Add, i, seven);
    let yv = b.bin(IrOp::Xor, i, five);
    let xa = b.bin(IrOp::Add, xs, i);
    let ya = b.bin(IrOp::Add, ys, i);
    b.store(xv, xa, 0);
    b.store(yv, ya, 0);
    b.bin_into(i, IrOp::Add, i, one);
    b.jump(init_top);
    b.mark(init_done);

    let acc = b.constant(0);
    let j = b.constant(0);
    let top = b.label();
    let done = b.label();
    b.mark(top);
    b.branch(Cond::Ge, j, limit, done);
    let xa2 = b.bin(IrOp::Add, xs, j);
    let ya2 = b.bin(IrOp::Add, ys, j);
    let x = b.load(xa2, 0);
    let y = b.load(ya2, 0);
    let prod = b.bin(IrOp::Mul, x, y);
    b.bin_into(acc, IrOp::Add, prod, acc); // mul directly feeding add → MAC
    b.bin_into(j, IrOp::Add, j, one);
    b.jump(top);
    b.mark(done);
    b.ret(acc);
    b.finish()
}

/// CRC-style shift/xor mixing.
pub fn crc_mix(rounds: i64) -> IrFunction {
    let mut b = IrBuilder::new("crc_mix");
    let state = b.constant(0x1d0f);
    let i = b.constant(0);
    let limit = b.constant(rounds);
    let one = b.constant(1);
    let poly = b.constant(0x8005);
    let top = b.label();
    let done = b.label();
    b.mark(top);
    b.branch(Cond::Ge, i, limit, done);
    let sh = b.bin(IrOp::Shl, state, one);
    let mixed = b.bin(IrOp::Xor, sh, poly);
    let masked_in = b.bin(IrOp::And, mixed, i);
    b.bin_into(state, IrOp::Xor, mixed, masked_in);
    b.bin_into(i, IrOp::Add, i, one);
    b.jump(top);
    b.mark(done);
    b.ret(state);
    b.finish()
}

/// Bubble sort over n pseudo-random words; returns the median element.
pub fn bubble(n: i64) -> IrFunction {
    let mut b = IrBuilder::new("bubble");
    let base = b.constant(128);
    let i = b.constant(0);
    let limit = b.constant(n);
    let one = b.constant(1);
    let seed_mul = b.constant(13);
    let seed_mask = b.constant(63);
    let init_top = b.label();
    let init_done = b.label();
    b.mark(init_top);
    b.branch(Cond::Ge, i, limit, init_done);
    let v = b.bin(IrOp::Mul, i, seed_mul);
    let v2 = b.bin(IrOp::And, v, seed_mask);
    let addr = b.bin(IrOp::Add, base, i);
    b.store(v2, addr, 0);
    b.bin_into(i, IrOp::Add, i, one);
    b.jump(init_top);
    b.mark(init_done);

    // Outer/inner bubble passes.
    let pass = b.constant(0);
    let outer_top = b.label();
    let outer_done = b.label();
    b.mark(outer_top);
    b.branch(Cond::Ge, pass, limit, outer_done);
    let j = b.constant(0);
    let inner_limit = b.bin(IrOp::Sub, limit, one);
    let inner_top = b.label();
    let inner_done = b.label();
    let no_swap = b.label();
    b.mark(inner_top);
    b.branch(Cond::Ge, j, inner_limit, inner_done);
    let a1 = b.bin(IrOp::Add, base, j);
    let x = b.load(a1, 0);
    let y = b.load(a1, 1);
    b.branch(Cond::Lt, x, y, no_swap);
    b.store(y, a1, 0);
    b.store(x, a1, 1);
    b.mark(no_swap);
    b.bin_into(j, IrOp::Add, j, one);
    b.jump(inner_top);
    b.mark(inner_done);
    b.bin_into(pass, IrOp::Add, pass, one);
    b.jump(outer_top);
    b.mark(outer_done);

    let two = b.constant(2);
    let mid = b.bin(IrOp::Div, limit, two);
    let mid_addr = b.bin(IrOp::Add, base, mid);
    let med = b.load(mid_addr, 0);
    b.ret(med);
    b.finish()
}

/// Horner evaluation of a fixed polynomial at several points.
pub fn poly_eval(points: i64) -> IrFunction {
    let mut b = IrBuilder::new("poly_eval");
    let acc = b.constant(0);
    let x = b.constant(0);
    let limit = b.constant(points);
    let one = b.constant(1);
    // Coefficients 5, 3, 2 with constant-foldable setup 2*16/4 etc.
    let sixteen = b.constant(16);
    let four = b.constant(4);
    let c2 = b.bin(IrOp::Div, sixteen, four); // folds to 4 at O3
    let c1 = b.constant(3);
    let c0 = b.constant(5);
    let top = b.label();
    let done = b.label();
    b.mark(top);
    b.branch(Cond::Ge, x, limit, done);
    let t1 = b.bin(IrOp::Mul, c2, x);
    let t2 = b.bin(IrOp::Add, t1, c1);
    let t3 = b.bin(IrOp::Mul, t2, x);
    let t4 = b.bin(IrOp::Add, t3, c0);
    b.bin_into(acc, IrOp::Add, acc, t4);
    b.bin_into(x, IrOp::Add, x, one);
    b.jump(top);
    b.mark(done);
    b.ret(acc);
    b.finish()
}

/// Strided memory fill; returns the last written address value.
pub fn memset_stride(n: i64) -> IrFunction {
    let mut b = IrBuilder::new("memset_stride");
    let base = b.constant(1024);
    let i = b.constant(0);
    let limit = b.constant(n);
    let one = b.constant(1);
    let two = b.constant(2);
    let fill = b.constant(0xAB);
    let top = b.label();
    let done = b.label();
    b.mark(top);
    b.branch(Cond::Ge, i, limit, done);
    let off = b.bin(IrOp::Mul, i, two); // strength-reducible ×2
    let addr = b.bin(IrOp::Add, base, off);
    b.store(fill, addr, 0);
    b.bin_into(i, IrOp::Add, i, one);
    b.jump(top);
    b.mark(done);
    let final_addr = b.bin(IrOp::Add, base, limit);
    let v = b.load(final_addr, 0);
    b.ret(v);
    b.finish()
}

/// Division/shift heavy kernel (exercises expansion on div-less targets).
pub fn shifty(n: i64) -> IrFunction {
    let mut b = IrBuilder::new("shifty");
    let acc = b.constant(0x7fff);
    let i = b.constant(1);
    let limit = b.constant(n);
    let one = b.constant(1);
    let three = b.constant(3);
    let top = b.label();
    let done = b.label();
    b.mark(top);
    b.branch(Cond::Ge, i, limit, done);
    let q = b.bin(IrOp::Div, acc, three);
    let s = b.bin(IrOp::Shr, acc, one);
    b.bin_into(acc, IrOp::Add, q, s);
    let odd = b.bin(IrOp::And, i, one);
    b.bin_into(acc, IrOp::Xor, acc, odd);
    b.bin_into(i, IrOp::Add, i, one);
    b.jump(top);
    b.mark(done);
    b.ret(acc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_distinct_kernels() {
        let s = benchmark_suite();
        assert_eq!(s.len(), 8);
        let mut names: Vec<&str> = s.iter().map(|k| k.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn kernels_are_well_formed() {
        for k in benchmark_suite() {
            // Every jump/branch targets a marked label.
            let labels = k.label_map();
            for inst in &k.insts {
                match inst {
                    crate::ir::Inst::Jump { target } | crate::ir::Inst::Branch { target, .. } => {
                        assert!(labels.contains_key(target), "{}: missing label", k.name);
                    }
                    _ => {}
                }
            }
            // Ends in a return.
            assert!(matches!(k.insts.last(), Some(crate::ir::Inst::Ret { .. })));
        }
    }
}
