//! Stage 1a — Templatization (paper §3.2.1).
//!
//! A function group (all target-specific implementations of one interface
//! function) is folded into a *function template*: a tree of statement
//! templates whose tokens are split into common code and placeholder slots
//! (`SV`) holding per-target values. Folding is progressive: the richest
//! implementation seeds the template, every further implementation is
//! aligned against it with the GumTree matcher, matched statements are merged
//! token-wise by LCS, and unmatched statements are inserted as new template
//! nodes.

use std::collections::BTreeMap;
use vega_cpplite::{Function, Stmt, StmtKind, Token};
use vega_treediff::{align_stmts, lcs_indices};

/// A token position in a statement template: literal common code or a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTok {
    /// Common code shared by all implementations.
    Common(Token),
    /// Placeholder `SV_i` — index into [`StmtTemplate::slots`].
    Slot(usize),
}

/// One placeholder's per-target values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotData {
    /// Target → the token run this target has at the slot (possibly empty).
    pub values: BTreeMap<String, Vec<Token>>,
}

/// One statement template (a `T_k` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtTemplate {
    /// Statement kind shared by all implementations of this node.
    pub kind: StmtKind,
    /// Parent node index (None = top level of the function body).
    pub parent: Option<usize>,
    /// `true` if this node lives in its parent's else-branch.
    pub in_else: bool,
    /// Head pattern: common tokens and slots (structural keywords excluded,
    /// like [`Stmt::head`]).
    pub pattern: Vec<PatTok>,
    /// Placeholder data, indexed by [`PatTok::Slot`].
    pub slots: Vec<SlotData>,
    /// Targets whose implementation contains this statement.
    pub present: Vec<String>,
    /// Child template-node indices (body statements).
    pub children: Vec<usize>,
    /// Child template-node indices in the else branch.
    pub else_children: Vec<usize>,
}

impl StmtTemplate {
    /// Number of placeholder slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of common (non-slot) pattern tokens, including the structural
    /// tokens implied by the kind — the `|T_k^com|` of Eq. (1).
    pub fn common_token_count(&self) -> usize {
        let structural = match self.kind {
            StmtKind::Simple => 1,
            StmtKind::Return | StmtKind::Case => 2,
            StmtKind::Default | StmtKind::Break | StmtKind::Block => 2,
            _ => 4,
        };
        structural
            + self
                .pattern
                .iter()
                .filter(|p| matches!(p, PatTok::Common(_)))
                .count()
    }

    /// Total pattern length including structure — the `|T_k|` of Eq. (1).
    pub fn total_token_count(&self) -> usize {
        self.common_token_count() + self.slot_count()
    }

    /// The head tokens a specific target has for this node, with slots
    /// substituted (`None` if the target lacks the statement).
    pub fn head_for(&self, target: &str) -> Option<Vec<Token>> {
        if !self.present.iter().any(|t| t == target) {
            return None;
        }
        let mut out = Vec::with_capacity(self.pattern.len());
        for p in &self.pattern {
            match p {
                PatTok::Common(t) => out.push(t.clone()),
                PatTok::Slot(i) => {
                    if let Some(v) = self.slots[*i].values.get(target) {
                        out.extend(v.iter().cloned());
                    }
                }
            }
        }
        Some(out)
    }

    /// The head tokens with each slot rendered as a `SV` marker token (the
    /// template view fed to the model).
    pub fn pattern_tokens_with_markers(&self, marker: &Token) -> Vec<Token> {
        self.pattern
            .iter()
            .map(|p| match p {
                PatTok::Common(t) => t.clone(),
                PatTok::Slot(_) => marker.clone(),
            })
            .collect()
    }
}

/// The signature template of a function group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SigTemplate {
    /// Pattern over the signature token sequence.
    pub pattern: Vec<PatTok>,
    /// Slot data for the signature.
    pub slots: Vec<SlotData>,
}

/// A function template (`FT_M`): signature plus statement-template tree.
#[derive(Debug, Clone)]
pub struct FunctionTemplate {
    /// Interface function name.
    pub name: String,
    /// Signature template.
    pub signature: SigTemplate,
    /// All statement templates; tree structure via parent/children indices.
    pub stmts: Vec<StmtTemplate>,
    /// Top-level statement-template indices in order.
    pub roots: Vec<usize>,
    /// Group members (target names) in merge order.
    pub targets: Vec<String>,
}

impl FunctionTemplate {
    /// Builds the template for a function group.
    ///
    /// # Panics
    /// Panics if the group is empty.
    pub fn build(name: &str, group: &[(&str, &Function)]) -> Self {
        assert!(!group.is_empty(), "empty function group");
        // Seed with the implementation with the most statements.
        let mut order: Vec<usize> = (0..group.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(group[i].1.stmt_count()));
        let (seed_target, seed_fn) = group[order[0]];

        let mut t = FunctionTemplate {
            name: name.to_string(),
            signature: SigTemplate {
                pattern: seed_fn
                    .signature_tokens()
                    .into_iter()
                    .map(PatTok::Common)
                    .collect(),
                slots: Vec::new(),
            },
            stmts: Vec::new(),
            roots: Vec::new(),
            targets: vec![seed_target.to_string()],
        };
        let roots = t.add_subtree(&seed_fn.body, None, false, seed_target);
        t.roots = roots;

        for &i in &order[1..] {
            let (target, f) = group[i];
            t.merge(target, f);
        }
        t
    }

    fn add_subtree(
        &mut self,
        stmts: &[Stmt],
        parent: Option<usize>,
        in_else: bool,
        target: &str,
    ) -> Vec<usize> {
        let mut ids = Vec::with_capacity(stmts.len());
        for s in stmts {
            let id = self.stmts.len();
            self.stmts.push(StmtTemplate {
                kind: s.kind,
                parent,
                in_else,
                pattern: s.head.iter().cloned().map(PatTok::Common).collect(),
                slots: Vec::new(),
                present: vec![target.to_string()],
                children: Vec::new(),
                else_children: Vec::new(),
            });
            let kids = self.add_subtree(&s.children, Some(id), false, target);
            self.stmts[id].children = kids;
            let ekids = self.add_subtree(&s.else_children, Some(id), true, target);
            self.stmts[id].else_children = ekids;
            ids.push(id);
        }
        ids
    }

    /// Materializes the template as a pseudo statement forest (representative
    /// head = pattern with slots filled by the first present target) so the
    /// GumTree aligner can match an incoming function against it. Returns the
    /// forest plus, per preorder statement index, the template node id.
    fn materialize(&self) -> (Vec<Stmt>, Vec<usize>) {
        let mut index_map = Vec::new();
        let forest = self.materialize_list(&self.roots, &mut index_map);
        (forest, index_map)
    }

    fn materialize_list(&self, ids: &[usize], index_map: &mut Vec<usize>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            let node = &self.stmts[id];
            let rep_target = node.present.first().cloned().unwrap_or_default();
            let head = node.head_for(&rep_target).unwrap_or_default();
            index_map.push(id);
            let children = self.materialize_list(&node.children, index_map);
            let else_children = self.materialize_list(&node.else_children, index_map);
            let mut s = Stmt::new(node.kind, head, children);
            s.else_children = else_children;
            out.push(s);
        }
        out
    }

    /// Merges one more target implementation into the template (also the
    /// entry point of the incremental update mechanism, §6).
    pub fn merge_target(&mut self, target: &str, f: &Function) {
        self.merge(target, f);
    }

    /// Merges one more target implementation into the template.
    fn merge(&mut self, target: &str, f: &Function) {
        self.targets.push(target.to_string());
        self.merge_signature(target, f);

        let (forest, index_map) = self.materialize();
        let alignment = align_stmts(&forest, &f.body);

        // Collect the incoming statements in preorder with their parents.
        let mut incoming: Vec<(&Stmt, Option<usize>, bool)> = Vec::new();
        fn collect<'a>(
            stmts: &'a [Stmt],
            parent: Option<usize>,
            in_else: bool,
            out: &mut Vec<(&'a Stmt, Option<usize>, bool)>,
        ) {
            for s in stmts {
                let my_index = out.len();
                out.push((s, parent, in_else));
                collect(&s.children, Some(my_index), false, out);
                collect(&s.else_children, Some(my_index), true, out);
            }
        }
        collect(&f.body, None, false, &mut incoming);

        // Map incoming preorder index → template node id (for matched ones).
        let mut matched_node: Vec<Option<usize>> = vec![None; incoming.len()];
        for (ti, fi) in &alignment.pairs {
            // Only merge when kinds agree; a kind clash is a structural
            // mismatch better handled as insertion.
            let node = index_map[*ti];
            if self.stmts[node].kind == incoming[*fi].0.kind {
                matched_node[*fi] = Some(node);
            }
        }

        // 1. Merge matched statements' tokens.
        for (fi, node) in matched_node.iter().enumerate() {
            if let Some(node) = node {
                self.merge_tokens(*node, target, &incoming[fi].0.head);
                self.stmts[*node].present.push(target.to_string());
            }
        }

        // 2. Insert unmatched incoming statements.
        for fi in 0..incoming.len() {
            if matched_node[fi].is_some() {
                continue;
            }
            let (stmt, parent_fi, in_else) = incoming[fi];
            // Parent template node: the node its parent matched/was inserted
            // to; unmatched parents are processed first (preorder), so look
            // up the running map.
            let parent_node = parent_fi.and_then(|p| matched_node[p]);
            if parent_fi.is_some() && parent_node.is_none() {
                // The parent failed to land in the template; skip the child —
                // it will be represented through the parent's subtree when
                // the parent itself was inserted (handled below via
                // add_subtree), so nothing to do here.
                continue;
            }
            let id = self.insert_node(
                stmt,
                parent_node,
                in_else,
                target,
                fi,
                &matched_node,
                &incoming,
            );
            matched_node[fi] = Some(id);
            // Children of an inserted node are added as a whole subtree.
            let kids = self.add_subtree(&stmt.children, Some(id), false, target);
            self.stmts[id].children = kids;
            let ekids = self.add_subtree(&stmt.else_children, Some(id), true, target);
            self.stmts[id].else_children = ekids;
            // Mark the subtree's incoming indices as handled.
            mark_subtree_handled(fi, &incoming, &mut matched_node, id);
        }
    }

    /// Inserts a new template node for `stmt` after the template position of
    /// the nearest preceding matched sibling.
    #[allow(clippy::too_many_arguments)]
    fn insert_node(
        &mut self,
        stmt: &Stmt,
        parent_node: Option<usize>,
        in_else: bool,
        target: &str,
        fi: usize,
        matched_node: &[Option<usize>],
        incoming: &[(&Stmt, Option<usize>, bool)],
    ) -> usize {
        let id = self.stmts.len();
        self.stmts.push(StmtTemplate {
            kind: stmt.kind,
            parent: parent_node,
            in_else,
            pattern: stmt.head.iter().cloned().map(PatTok::Common).collect(),
            slots: Vec::new(),
            present: vec![target.to_string()],
            children: Vec::new(),
            else_children: Vec::new(),
        });
        // Find the insertion position among siblings: after the last earlier
        // incoming sibling (same parent/in_else) that landed in the template.
        let siblings: Vec<usize> = match parent_node {
            Some(p) => {
                if in_else {
                    self.stmts[p].else_children.clone()
                } else {
                    self.stmts[p].children.clone()
                }
            }
            None => self.roots.clone(),
        };
        let mut insert_at = 0usize;
        for (j, entry) in incoming.iter().enumerate().take(fi) {
            let same_parent = entry.1.map(|p| matched_node[p])
                == incoming[fi].1.map(|p| matched_node[p])
                && entry.2 == in_else;
            if !same_parent {
                continue;
            }
            if let Some(node) = matched_node[j] {
                if let Some(pos) = siblings.iter().position(|&s| s == node) {
                    insert_at = insert_at.max(pos + 1);
                }
            }
        }
        match parent_node {
            Some(p) => {
                let list = if in_else {
                    &mut self.stmts[p].else_children
                } else {
                    &mut self.stmts[p].children
                };
                let at = insert_at.min(list.len());
                list.insert(at, id);
            }
            None => {
                let at = insert_at.min(self.roots.len());
                self.roots.insert(at, id);
            }
        }
        id
    }

    /// Token-level merge of an incoming head into a node's pattern: common
    /// tokens stay common, mismatching runs become (or extend) slots.
    fn merge_tokens(&mut self, node: usize, target: &str, head: &[Token]) {
        let pattern = std::mem::take(&mut self.stmts[node].pattern);
        let mut slots = std::mem::take(&mut self.stmts[node].slots);
        let present = self.stmts[node].present.clone();

        // LCS between pattern (slots never match) and the incoming tokens.
        let head_pat: Vec<PatTok> = head.iter().cloned().map(PatTok::Common).collect();
        let matches = lcs_indices(&pattern, &head_pat, |p, t| match (p, t) {
            (PatTok::Common(pt), PatTok::Common(ht)) => pt == ht,
            _ => false,
        });

        let mut new_pattern: Vec<PatTok> = Vec::new();
        let (mut pi, mut hi) = (0usize, 0usize);
        let push_gap = |pat_run: &[PatTok],
                        head_run: &[Token],
                        slots: &mut Vec<SlotData>,
                        new_pattern: &mut Vec<PatTok>| {
            if pat_run.is_empty() && head_run.is_empty() {
                return;
            }
            // Reuse an existing slot if the pattern gap is exactly one
            // slot; otherwise build a new slot absorbing the gap.
            if pat_run.len() == 1 {
                if let PatTok::Slot(s) = pat_run[0] {
                    slots[s]
                        .values
                        .insert(target.to_string(), head_run.to_vec());
                    new_pattern.push(PatTok::Slot(s));
                    return;
                }
            }
            let mut slot = SlotData::default();
            // Previous targets' value for this gap: the common tokens
            // and slot values that sat in the gap.
            for t in &present {
                let mut v: Vec<Token> = Vec::new();
                for p in pat_run {
                    match p {
                        PatTok::Common(tok) => v.push(tok.clone()),
                        PatTok::Slot(s) => {
                            if let Some(sv) = slots[*s].values.get(t) {
                                v.extend(sv.iter().cloned());
                            }
                        }
                    }
                }
                slot.values.insert(t.clone(), v);
            }
            slot.values.insert(target.to_string(), head_run.to_vec());
            slots.push(slot);
            new_pattern.push(PatTok::Slot(slots.len() - 1));
        };

        for (mp, mh) in matches.iter().copied() {
            push_gap(
                &pattern[pi..mp],
                &head[hi..mh],
                &mut slots,
                &mut new_pattern,
            );
            new_pattern.push(pattern[mp].clone());
            if let PatTok::Slot(s) = pattern[mp] {
                // Shouldn't happen (slots never match), but keep sane.
                slots[s]
                    .values
                    .insert(target.to_string(), vec![head[mh].clone()]);
            }
            pi = mp + 1;
            hi = mh + 1;
        }
        push_gap(&pattern[pi..], &head[hi..], &mut slots, &mut new_pattern);

        self.stmts[node].pattern = new_pattern;
        self.stmts[node].slots = slots;
    }

    fn merge_signature(&mut self, target: &str, f: &Function) {
        let head = f.signature_tokens();
        let mut sig = std::mem::take(&mut self.signature);
        // Reuse merge_tokens machinery via a scratch node.
        let scratch = StmtTemplate {
            kind: StmtKind::Simple,
            parent: None,
            in_else: false,
            pattern: sig.pattern,
            slots: sig.slots,
            present: self.targets[..self.targets.len() - 1].to_vec(),
            children: Vec::new(),
            else_children: Vec::new(),
        };
        self.stmts.push(scratch);
        let idx = self.stmts.len() - 1;
        self.merge_tokens(idx, target, &head);
        let scratch = self.stmts.pop().unwrap();
        sig.pattern = scratch.pattern;
        sig.slots = scratch.slots;
        self.signature = sig;
    }

    /// Statement templates in preorder (the `T_1 … T_N` order used for
    /// feature vectors and generation).
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.stmts.len());
        fn walk(t: &FunctionTemplate, ids: &[usize], out: &mut Vec<usize>) {
            for &id in ids {
                out.push(id);
                walk(t, &t.stmts[id].children, out);
                walk(t, &t.stmts[id].else_children, out);
            }
        }
        walk(self, &self.roots, &mut out);
        out
    }

    /// Whether a target's implementation contains statement template `id`.
    pub fn has(&self, id: usize, target: &str) -> bool {
        self.stmts[id].present.iter().any(|t| t == target)
    }
}

fn mark_subtree_handled(
    root_fi: usize,
    incoming: &[(&Stmt, Option<usize>, bool)],
    matched_node: &mut [Option<usize>],
    _node: usize,
) {
    // Children of `root_fi` occupy the following indices until the preorder
    // leaves the subtree; mark any descendant still unhandled as handled by
    // pointing it at its own template node (created in add_subtree). We only
    // need to prevent re-insertion, so marking with the root id is enough.
    let span = subtree_span(root_fi, incoming);
    for slot in matched_node.iter_mut().take(span.1).skip(span.0 + 1) {
        if slot.is_none() {
            *slot = Some(usize::MAX); // sentinel: handled, not a merge target
        }
    }
}

/// Preorder span `[start, end)` of the subtree rooted at `fi`.
fn subtree_span(fi: usize, incoming: &[(&Stmt, Option<usize>, bool)]) -> (usize, usize) {
    let mut end = fi + 1;
    while end < incoming.len() {
        // A node is inside the subtree if its parent chain reaches fi.
        let mut p = incoming[end].1;
        let mut inside = false;
        while let Some(pi) = p {
            if pi == fi {
                inside = true;
                break;
            }
            p = incoming[pi].1;
        }
        if !inside {
            break;
        }
        end += 1;
    }
    (fi, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_cpplite::parse_function;

    fn arm_mips_group() -> (Function, Function) {
        let arm = parse_function(
            r#"
unsigned ARMELFObjectWriter::getRelocType(const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) {
  unsigned Kind = Fixup.getTargetKind();
  unsigned Modifier = Target.getAccessVariant();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      return ELF::R_ARM_NONE;
    }
  }
  return ELF::R_ARM_NONE;
}
"#,
        )
        .unwrap();
        let mips = parse_function(
            r#"
unsigned MipsELFObjectWriter::getRelocType(const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) {
  unsigned Kind = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (Kind) {
    case Mips::fixup_MIPS_HI16:
      return ELF::R_MIPS_HI16;
    default:
      return ELF::R_MIPS_NONE;
    }
  }
  return ELF::R_MIPS_NONE;
}
"#,
        )
        .unwrap();
        (arm, mips)
    }

    #[test]
    fn motivating_example_template() {
        let (arm, mips) = arm_mips_group();
        let t = FunctionTemplate::build("getRelocType", &[("ARM", &arm), ("Mips", &mips)]);
        // The Modifier statement (paper's S2) is ARM-only.
        let modifier = t
            .stmts
            .iter()
            .find(|s| {
                s.pattern
                    .iter()
                    .any(|p| matches!(p, PatTok::Common(Token::Ident(i)) if i == "Modifier"))
            })
            .expect("modifier node");
        assert_eq!(modifier.present, vec!["ARM".to_string()]);

        // The case label merged into a slotted pattern present on both.
        let case = t
            .stmts
            .iter()
            .find(|s| s.kind == StmtKind::Case)
            .expect("case node");
        assert_eq!(case.present.len(), 2);
        assert!(!case.slots.is_empty());
        let slot_vals = &case.slots.last().unwrap().values;
        assert!(slot_vals.contains_key("ARM") && slot_vals.contains_key("Mips"));

        // Kind decl is fully common.
        let kind_decl = t
            .stmts
            .iter()
            .find(|s| {
                s.pattern
                    .iter()
                    .any(|p| matches!(p, PatTok::Common(Token::Ident(i)) if i == "getTargetKind"))
            })
            .unwrap();
        assert_eq!(kind_decl.slot_count(), 0);
        assert_eq!(kind_decl.present.len(), 2);
    }

    #[test]
    fn head_for_reconstructs_target_statement() {
        let (arm, mips) = arm_mips_group();
        let t = FunctionTemplate::build("getRelocType", &[("ARM", &arm), ("Mips", &mips)]);
        let case = t.stmts.iter().find(|s| s.kind == StmtKind::Case).unwrap();
        let arm_head = case.head_for("ARM").unwrap();
        let text = vega_cpplite::render_tokens(&arm_head);
        assert_eq!(text, "ARM::fixup_arm_movt_hi16");
        let mips_head = case.head_for("Mips").unwrap();
        assert_eq!(
            vega_cpplite::render_tokens(&mips_head),
            "Mips::fixup_MIPS_HI16"
        );
        assert_eq!(case.head_for("RISCV"), None);
    }

    #[test]
    fn signature_template_has_qualifier_slot() {
        let (arm, mips) = arm_mips_group();
        let t = FunctionTemplate::build("getRelocType", &[("ARM", &arm), ("Mips", &mips)]);
        assert!(!t.signature.slots.is_empty());
        // The function name itself is common.
        assert!(t
            .signature
            .pattern
            .iter()
            .any(|p| matches!(p, PatTok::Common(Token::Ident(i)) if i == "getRelocType")));
    }

    #[test]
    fn preorder_covers_all_nodes_once() {
        let (arm, mips) = arm_mips_group();
        let t = FunctionTemplate::build("getRelocType", &[("ARM", &arm), ("Mips", &mips)]);
        let pre = t.preorder();
        let mut sorted = pre.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pre.len());
        assert_eq!(pre.len(), t.stmts.len());
    }

    #[test]
    fn three_way_merge_keeps_case_variants() {
        let a = parse_function(
            "unsigned f(unsigned K) { switch (K) { case A1: return 1; case A2: return 2; default: break; } return 0; }",
        )
        .unwrap();
        let b = parse_function(
            "unsigned f(unsigned K) { switch (K) { case B1: return 1; default: break; } return 0; }",
        )
        .unwrap();
        let c = parse_function(
            "unsigned f(unsigned K) { switch (K) { case C1: return 1; case C2: return 2; case C3: return 9; default: break; } return 0; }",
        )
        .unwrap();
        let t = FunctionTemplate::build("f", &[("A", &a), ("B", &b), ("C", &c)]);
        let n_cases = t.stmts.iter().filter(|s| s.kind == StmtKind::Case).count();
        // The seed (C, richest) has 3; A's and B's cases merge into them.
        assert!(n_cases >= 3, "cases: {n_cases}");
        for s in t.stmts.iter().filter(|s| s.kind == StmtKind::Case) {
            assert!(!s.present.is_empty());
        }
    }
}
