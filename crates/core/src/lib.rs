//! VEGA core (building up).
mod features;
mod featvec;
mod generate;
mod pipeline;
mod template;
pub use features::*;
pub use featvec::*;
pub use generate::*;
pub use pipeline::*;
pub use template::*;
