//! The end-to-end VEGA pipeline (Fig. 5): preprocessing → Stage 1
//! code-feature mapping → Stage 2 model creation → Stage 3 target-specific
//! code generation.

use crate::features::{
    global_signals, prop_catalog, select_features, GlobalSignals, PropCatalog, TemplateFeatures,
    TgtIndex,
};
use crate::featvec::{
    build_input, statement_line_pieces, template_line_pieces, training_values, StatementSample,
    SIG_NODE,
};
use crate::generate::{generate_function, training_confidence, GeneratedFunction};
use crate::template::FunctionTemplate;
use std::collections::{BTreeMap, HashSet};
use std::time::Duration;
use vega_corpus::{Corpus, CorpusConfig, Mix64, Module, VirtualFs};
use vega_cpplite::Token;
use vega_model::{token_to_pieces, CodeBe, ModelChoice, TargetNorm, TrainConfig, Vocab};
use vega_nn::{GruConfig, TransformerConfig};

/// How the training/verification split is drawn (paper §4.1.2 and the split
/// ablation in §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// 75% of the *functions in each group* train, 25% verify (the paper's
    /// chosen scheme — every template is covered).
    FunctionGroup,
    /// 75% of the *backends* train; templates built from those backends only
    /// (the ablated scheme that loses template coverage).
    Backend,
}

/// Model width presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (seconds).
    Tiny,
    /// Experiment scale (minutes on one core).
    Small,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct VegaConfig {
    /// Corpus construction parameters.
    pub corpus: CorpusConfig,
    /// Model width preset.
    pub scale: Scale,
    /// Training hyperparameters.
    pub train: TrainConfig,
    /// Architecture choice (transformer vs. GRU ablation).
    pub model: ModelChoice,
    /// Split strategy.
    pub split: Split,
    /// Master seed for splits.
    pub seed: u64,
}

impl Default for VegaConfig {
    fn default() -> Self {
        VegaConfig {
            corpus: CorpusConfig::default(),
            scale: Scale::Small,
            train: TrainConfig::default(),
            model: ModelChoice::Transformer,
            split: Split::FunctionGroup,
            seed: 0,
        }
    }
}

impl VegaConfig {
    /// A fast configuration for unit/integration tests: tiny corpus, tiny
    /// model, one epoch, no pre-training.
    pub fn tiny() -> Self {
        VegaConfig {
            corpus: CorpusConfig::tiny(),
            scale: Scale::Tiny,
            train: TrainConfig {
                pretrain_steps: 0,
                finetune_epochs: 1,
                lr: 3e-3,
                seed: 1,
            },
            model: ModelChoice::Transformer,
            split: Split::FunctionGroup,
            seed: 0,
        }
    }
}

/// A loaded checkpoint that does not fit the pipeline it was asked to serve
/// (vocabulary or sequence-length mismatch). Returned by
/// [`Vega::with_model`] so callers surface a diagnostic instead of decoding
/// garbage with silently re-indexed token ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLoadError {
    /// Human-readable mismatch description.
    pub msg: String,
}

impl std::fmt::Display for ModelLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model load error: {}", self.msg)
    }
}

impl std::error::Error for ModelLoadError {}

/// A function template bundled with its module and discovered features.
#[derive(Debug, Clone)]
pub struct TemplateBundle {
    /// Backend module of the interface function.
    pub module: Module,
    /// The function template.
    pub template: FunctionTemplate,
    /// Its properties and per-target values.
    pub features: TemplateFeatures,
}

/// Timing breakdown of the pipeline stages.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Stage 1: code-feature mapping.
    pub code_feature_mapping: Duration,
    /// Stage 2: model creation (pre-training + fine-tuning).
    pub model_creation: Duration,
}

/// A backend generated for a new target, with per-module timing (Fig. 7).
#[derive(Debug, Clone)]
pub struct GeneratedBackend {
    /// Target name.
    pub target: String,
    /// Generated functions with confidence metadata.
    pub functions: Vec<(Module, GeneratedFunction)>,
    /// Wall-clock generation time per module.
    pub module_times: BTreeMap<Module, Duration>,
    /// Total generation time.
    pub total_time: Duration,
}

impl GeneratedBackend {
    /// Looks up a generated function by interface name.
    pub fn function(&self, name: &str) -> Option<&GeneratedFunction> {
        self.functions
            .iter()
            .find(|(_, f)| f.name == name)
            .map(|(_, f)| f)
    }
}

/// The trained VEGA system.
pub struct Vega {
    /// Pipeline configuration.
    pub config: VegaConfig,
    /// The backend corpus.
    pub corpus: Corpus,
    /// The `PropList` catalog.
    pub catalog: PropCatalog,
    /// Function templates with features, keyed by interface name.
    pub templates: BTreeMap<String, TemplateBundle>,
    /// Training samples (75% split).
    pub train_samples: Vec<StatementSample>,
    /// Verification samples (25% split).
    pub verify_samples: Vec<StatementSample>,
    /// Stage timings.
    pub timings: StageTimings,
    model: CodeBe,
    max_input_len: usize,
    tgt_ix: BTreeMap<String, TgtIndex>,
}

impl std::fmt::Debug for Vega {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vega")
            .field("templates", &self.templates.len())
            .field("train_samples", &self.train_samples.len())
            .field("verify_samples", &self.verify_samples.len())
            .finish()
    }
}

impl Vega {
    /// Runs preprocessing, Stage 1 and Stage 2: builds the corpus, folds
    /// function groups into templates, selects features, builds the
    /// vocabulary, pre-trains and fine-tunes CodeBE.
    pub fn train(config: VegaConfig) -> Self {
        let corpus = Corpus::build(&config.corpus);
        Self::train_on(config, corpus)
    }

    /// As [`Vega::train`] but over a pre-built corpus.
    pub fn train_on(config: VegaConfig, corpus: Corpus) -> Self {
        Self::assemble(config, corpus, None)
            .expect("fresh training derives its model from the corpus and cannot mismatch")
    }

    /// Builds the full system around an already-trained CodeBE checkpoint:
    /// Stage 1 (templates, features, samples) runs as in [`Vega::train`],
    /// Stage 2 is replaced by the loaded model. This is how the serving
    /// layer and `vega-experiments --load-model` reuse a checkpoint without
    /// retraining.
    ///
    /// # Errors
    /// Returns [`ModelLoadError`] when the checkpoint's vocabulary differs
    /// from the one this corpus/config derives, or when the model was sized
    /// for shorter inputs than this scale produces.
    pub fn with_model(config: VegaConfig, model: CodeBe) -> Result<Self, ModelLoadError> {
        let corpus = Corpus::build(&config.corpus);
        Self::with_model_on(config, corpus, model)
    }

    /// As [`Vega::with_model`] but over a pre-built corpus.
    ///
    /// # Errors
    /// See [`Vega::with_model`].
    pub fn with_model_on(
        config: VegaConfig,
        corpus: Corpus,
        model: CodeBe,
    ) -> Result<Self, ModelLoadError> {
        Self::assemble(config, corpus, Some(model))
    }

    fn assemble(
        config: VegaConfig,
        corpus: Corpus,
        pretrained: Option<CodeBe>,
    ) -> Result<Self, ModelLoadError> {
        let stage1 = vega_obs::global().span("pipeline.stage1.feature_mapping");
        let catalog = prop_catalog(corpus.llvm_fs());

        // Choose the training backends (Backend split drops 25% entirely).
        let mut training_targets: Vec<String> = corpus
            .training_targets()
            .map(|t| t.spec.name.clone())
            .collect();
        #[allow(unused_assignments)]
        let mut holdout_backends: HashSet<String> = HashSet::default();
        if config.split == Split::Backend {
            let mut rng = Mix64::keyed(config.seed, "backend-split");
            let mut order = training_targets.clone();
            for i in (1..order.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let n_hold = order.len() / 4;
            holdout_backends = order[..n_hold].iter().cloned().collect();
            training_targets.retain(|t| !holdout_backends.contains(t));
        }

        // Per-target description indexes.
        let mut tgt_ix: BTreeMap<String, TgtIndex> = BTreeMap::new();
        for t in corpus.training_targets() {
            tgt_ix.insert(t.spec.name.clone(), TgtIndex::build(&t.descriptions));
        }

        // Stage 1: templates + features per function group. Groups build
        // independently on the pool; collecting into a BTreeMap keeps the
        // template order thread-count independent (it is keyed anyway).
        let groups = corpus.function_groups(false);
        let group_list: Vec<_> = groups.iter().collect();
        let built = vega_par::par_map_slice(&group_list, |_, (name, (module, members))| {
            let members: Vec<(&str, &vega_cpplite::Function)> = members
                .iter()
                .filter(|(t, _)| training_targets.iter().any(|tt| tt == t))
                .map(|(t, f)| (*t, *f))
                .collect();
            if members.is_empty() {
                return None;
            }
            let template = FunctionTemplate::build(name, &members);
            let member_ix: BTreeMap<String, TgtIndex> = template
                .targets
                .iter()
                .filter_map(|t| tgt_ix.get(t).map(|ix| (t.clone(), ix.clone())))
                .collect();
            let features = select_features(&template, &catalog, &member_ix);
            Some((
                (*name).clone(),
                TemplateBundle {
                    module: *module,
                    template,
                    features,
                },
            ))
        });
        let templates: BTreeMap<String, TemplateBundle> = built.into_iter().flatten().collect();

        // Vocabulary from all training-backend statements plus description
        // identifiers.
        let vocab = build_vocab(&corpus, &training_targets);

        // Stage 1c: samples, split 75/25.
        let max_input_len = match config.scale {
            Scale::Tiny => 48,
            Scale::Small => 128,
        };
        let (train_samples, verify_samples) = build_samples(
            &templates,
            &tgt_ix,
            &vocab,
            config.seed,
            config.split,
            max_input_len,
        );
        let code_feature_mapping = stage1.finish();

        // Stage 2: model creation — or validation of a loaded checkpoint.
        let stage2 = vega_obs::global().span("pipeline.stage2.model_creation");
        let model = match pretrained {
            Some(model) => {
                // The checkpoint must tokenize exactly like this corpus, or
                // every sample/generation id would silently mean a different
                // piece. Serialized piece lists compare the whole table.
                if model.vocab.to_json_value().render() != vocab.to_json_value().render() {
                    return Err(ModelLoadError {
                        msg: format!(
                            "checkpoint vocabulary ({} pieces) does not match the \
                             corpus-derived vocabulary ({} pieces); was the checkpoint \
                             trained with the same --scale/--synthetic/--seed?",
                            model.vocab.len(),
                            vocab.len()
                        ),
                    });
                }
                if model.max_len() < max_input_len {
                    return Err(ModelLoadError {
                        msg: format!(
                            "checkpoint max input length {} is shorter than the {} this \
                             scale produces; reload with the scale it was trained at",
                            model.max_len(),
                            max_input_len
                        ),
                    });
                }
                model
            }
            None => {
                let mut model = match (config.model, config.scale) {
                    (ModelChoice::Transformer, Scale::Tiny) => {
                        CodeBe::transformer(vocab, |v| TransformerConfig {
                            max_len: 48,
                            ..TransformerConfig::tiny(v)
                        })
                    }
                    (ModelChoice::Transformer, Scale::Small) => {
                        CodeBe::transformer(vocab, |v| TransformerConfig {
                            max_len: 128,
                            ..TransformerConfig::small(v)
                        })
                    }
                    (ModelChoice::Gru, Scale::Tiny) => CodeBe::gru(vocab, |v| GruConfig {
                        max_len: 48,
                        ..GruConfig::tiny(v)
                    }),
                    (ModelChoice::Gru, Scale::Small) => CodeBe::gru(vocab, |v| GruConfig {
                        max_len: 128,
                        ..GruConfig::small(v)
                    }),
                };
                if config.train.pretrain_steps > 0 {
                    let sequences = pretrain_sequences(&corpus, &training_targets, &model.vocab);
                    model.pretrain(
                        &sequences,
                        config.train.pretrain_steps,
                        config.train.lr,
                        config.seed,
                    );
                }
                let mut dedup: HashSet<(Vec<usize>, Vec<usize>)> = HashSet::new();
                let mut pairs: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
                let mut sig_pairs: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
                for s in &train_samples {
                    if !dedup.insert((s.input.clone(), s.output.clone())) {
                        continue;
                    }
                    if s.node == crate::featvec::SIG_NODE {
                        sig_pairs.push((s.input.clone(), s.output.clone()));
                    }
                    pairs.push((s.input.clone(), s.output.clone()));
                }
                // Signatures are ~5% of samples but carry the whole-function
                // confidence; oversample them so they train as reliably as
                // bodies.
                for _ in 0..3 {
                    pairs.extend(sig_pairs.iter().cloned());
                }
                model.finetune(&pairs, &config.train);
                model
            }
        };
        let model_creation = stage2.finish();

        Ok(Vega {
            config,
            corpus,
            catalog,
            templates,
            train_samples,
            verify_samples,
            timings: StageTimings {
                code_feature_mapping,
                model_creation,
            },
            model,
            max_input_len,
            tgt_ix,
        })
    }

    /// The paper's proposed *software update mechanism* (§6): once a target's
    /// backend has been corrected by developers, VEGA incorporates it —
    /// templates absorb the new implementations, features are re-selected,
    /// and CodeBE is fine-tuned on the new samples (with replay of earlier
    /// data so it does not forget). Subsequent generations benefit from the
    /// added coverage.
    pub fn learn_target(
        &mut self,
        target: &str,
        backend: &vega_corpus::Backend,
        descriptions: &VirtualFs,
        epochs: usize,
    ) {
        let ix = TgtIndex::build(descriptions);
        self.tgt_ix.insert(target.to_string(), ix);
        // 1. Absorb implementations into the templates; re-select features.
        for (name, module, f) in backend.iter() {
            match self.templates.get_mut(name) {
                Some(bundle) => {
                    if !bundle.template.targets.iter().any(|t| t == target) {
                        bundle.template.merge_target(target, f);
                    }
                }
                None => {
                    let template = FunctionTemplate::build(name, &[(target, f)]);
                    self.templates.insert(
                        name.to_string(),
                        TemplateBundle {
                            module,
                            template,
                            features: crate::features::TemplateFeatures {
                                props: Vec::new(),
                                bool_values: BTreeMap::new(),
                                slot_props: std::collections::HashMap::new(),
                            },
                        },
                    );
                }
            }
        }
        let names: Vec<String> = self.templates.keys().cloned().collect();
        for name in names {
            let bundle = self.templates.get_mut(&name).unwrap();
            if !bundle.template.targets.iter().any(|t| t == target) {
                continue;
            }
            let member_ix: BTreeMap<String, TgtIndex> = bundle
                .template
                .targets
                .iter()
                .filter_map(|t| self.tgt_ix.get(t).map(|ix| (t.clone(), ix.clone())))
                .collect();
            bundle.features = select_features(&bundle.template, &self.catalog, &member_ix);
        }
        // 2. Build the new target's samples.
        let vocab = self.model.vocab.clone();
        let mut new_samples: Vec<StatementSample> = Vec::new();
        for (group, bundle) in &self.templates {
            if !bundle.template.targets.iter().any(|t| t == target) {
                continue;
            }
            let ix = &self.tgt_ix[target];
            let prop_candidates: BTreeMap<usize, usize> = bundle
                .features
                .props
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    p.source
                        .as_ref()
                        .map(|s| (i, ix.candidates(s).len().max(1)))
                })
                .collect();
            new_samples.extend(samples_for_target(
                group,
                bundle,
                target,
                &vocab,
                &prop_candidates,
                &global_signals(ix),
                self.max_input_len,
            ));
        }
        // 3. Fine-tune on the new samples plus a replay slice of the old.
        let mut pairs: Vec<(Vec<usize>, Vec<usize>)> = new_samples
            .iter()
            .map(|s| (s.input.clone(), s.output.clone()))
            .collect();
        for (i, s) in self.train_samples.iter().enumerate() {
            if i % 4 == 0 {
                pairs.push((s.input.clone(), s.output.clone()));
            }
        }
        let cfg = TrainConfig {
            pretrain_steps: 0,
            finetune_epochs: epochs,
            lr: self.config.train.lr * 0.5,
            seed: self.config.train.seed ^ 0x0DD,
        };
        self.model.finetune(&pairs, &cfg);
        self.train_samples.extend(new_samples);
    }

    /// Exact-match rate on the verification split (the paper reports 99.03%).
    pub fn verification_exact_match(&mut self) -> f64 {
        let pairs: Vec<(Vec<usize>, Vec<usize>)> = self
            .verify_samples
            .iter()
            .map(|s| (s.input.clone(), s.output.clone()))
            .collect();
        self.model.exact_match(&pairs, 72)
    }

    /// Stage 3: generates a complete backend for a target from its
    /// description files alone.
    pub fn generate_backend(&mut self, target: &str) -> GeneratedBackend {
        let descriptions: VirtualFs = self.corpus.tgt_fs(target).cloned().unwrap_or_default();
        self.generate_backend_from(target, &descriptions)
    }

    /// Stage 3 over explicit description files (for targets outside the
    /// corpus).
    pub fn generate_backend_from(
        &mut self,
        target: &str,
        descriptions: &VirtualFs,
    ) -> GeneratedBackend {
        let ix = TgtIndex::build(descriptions);
        let mut functions = Vec::new();
        let mut module_times: BTreeMap<Module, Duration> = BTreeMap::new();
        let stage3 = vega_obs::global().span("pipeline.stage3.generate");
        // Functions generate independently on the pool, each against its own
        // model replica — generation never mutates weights, so a replica
        // decodes exactly what the shared sequential model would. Results
        // come back in template order; Duration sums are exact integers, so
        // `module_times` is reduction-order independent too.
        let bundles: Vec<&TemplateBundle> = self.templates.values().collect();
        let model_ref = &self.model;
        let catalog = &self.catalog;
        let max_input_len = self.max_input_len;
        let generated = vega_par::par_map_slice(&bundles, |_, bundle| {
            // Child spans aggregate per module ("pipeline.stage3.generate.SEL"
            // etc.) while `module_times` keeps the public per-module map.
            let mspan = vega_obs::global().span(bundle.module.code());
            let mut replica = model_ref.clone();
            let f = generate_function(
                &mut replica,
                target,
                &bundle.template,
                &bundle.features,
                &ix,
                catalog,
                max_input_len,
            );
            (bundle.module, mspan.finish(), f)
        });
        for (module, dur, f) in generated {
            *module_times.entry(module).or_default() += dur;
            functions.push((module, f));
        }
        GeneratedBackend {
            target: target.to_string(),
            functions,
            module_times,
            total_time: stage3.finish(),
        }
    }

    /// Access to the trained model (ablations, persistence).
    pub fn model_mut(&mut self) -> &mut CodeBe {
        &mut self.model
    }

    /// Read access to the trained model (persistence, replica pooling).
    pub fn model(&self) -> &CodeBe {
        &self.model
    }

    /// The feature-vector truncation length this pipeline encodes at.
    pub fn max_input_len(&self) -> usize {
        self.max_input_len
    }
}

/// Builds the vocabulary over the training backends and description files.
fn build_vocab(corpus: &Corpus, training_targets: &[String]) -> Vocab {
    let mut pieces: Vec<String> = Vec::new();
    for t in corpus.training_targets() {
        if !training_targets.iter().any(|tt| tt == &t.spec.name) {
            continue;
        }
        let norm = TargetNorm::new(&t.spec.name);
        for (_, _, f) in t.backend.iter() {
            pieces.extend(
                norm.anonymize_pieces(
                    &f.signature_tokens()
                        .iter()
                        .flat_map(token_to_pieces)
                        .collect::<Vec<_>>(),
                ),
            );
            for s in f.iter_stmts() {
                pieces.extend(
                    norm.anonymize_pieces(
                        &s.line_tokens()
                            .iter()
                            .flat_map(token_to_pieces)
                            .collect::<Vec<_>>(),
                    ),
                );
            }
        }
        for (_, content) in t.descriptions.iter() {
            for tok in vega_cpplite::lex_lossy(content) {
                if matches!(tok, Token::Ident(_) | Token::Str(_)) {
                    pieces.extend(norm.anonymize_pieces(&token_to_pieces(&tok)));
                }
            }
        }
    }
    Vocab::build(pieces.iter().map(String::as_str))
}

/// Encoded statement sequences for the denoising pre-training pass.
fn pretrain_sequences(
    corpus: &Corpus,
    training_targets: &[String],
    vocab: &Vocab,
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for t in corpus.training_targets() {
        if !training_targets.iter().any(|tt| tt == &t.spec.name) {
            continue;
        }
        let norm = TargetNorm::new(&t.spec.name);
        for (_, _, f) in t.backend.iter() {
            for s in f.iter_stmts() {
                let mut ids = Vec::new();
                crate::featvec::encode_tokens_anonymized(&s.line_tokens(), vocab, &norm, &mut ids);
                ids.truncate(40);
                if !ids.is_empty() {
                    out.push(ids);
                }
            }
        }
    }
    out
}

/// Builds all statement samples and splits them 75/25.
fn build_samples(
    templates: &BTreeMap<String, TemplateBundle>,
    tgt_ix: &BTreeMap<String, TgtIndex>,
    vocab: &Vocab,
    seed: u64,
    split: Split,
    max_input_len: usize,
) -> (Vec<StatementSample>, Vec<StatementSample>) {
    let mut train = Vec::new();
    let mut verify = Vec::new();
    for (group, bundle) in templates {
        let template = &bundle.template;
        let feats = &bundle.features;
        // 75/25 member split per group (FunctionGroup scheme); under the
        // Backend scheme every member trains (the holdout never got here).
        let mut members = template.targets.clone();
        let mut rng = Mix64::keyed(seed, &format!("split/{group}"));
        for i in (1..members.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            members.swap(i, j);
        }
        let n_train = match split {
            Split::FunctionGroup => ((members.len() * 3) + 3) / 4,
            Split::Backend => members.len(),
        };
        for (mi, target) in members.iter().enumerate() {
            let Some(ix) = tgt_ix.get(target) else {
                continue;
            };
            let prop_candidates: BTreeMap<usize, usize> = feats
                .props
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    p.source
                        .as_ref()
                        .map(|s| (i, ix.candidates(s).len().max(1)))
                })
                .collect();
            let samples = samples_for_target(
                group,
                bundle,
                target,
                vocab,
                &prop_candidates,
                &global_signals(ix),
                max_input_len,
            );
            if mi < n_train {
                train.extend(samples);
            } else {
                verify.extend(samples);
            }
        }
    }
    (train, verify)
}

/// All statement samples of one target's implementation of one group.
#[allow(clippy::too_many_arguments)]
fn samples_for_target(
    group: &str,
    bundle: &TemplateBundle,
    target: &str,
    vocab: &Vocab,
    prop_candidates: &BTreeMap<usize, usize>,
    signals: &GlobalSignals,
    max_input_len: usize,
) -> Vec<StatementSample> {
    let template = &bundle.template;
    let feats = &bundle.features;
    let norm = TargetNorm::new(target);
    let mut out = Vec::new();

    // Signature sample.
    let sig_node = crate::generate::signature_node_for(template);
    let mut sig_tline = Vec::new();
    template_line_pieces(&sig_node, vocab, &mut sig_tline);
    let mut sig_values = training_values(template, feats, SIG_NODE, target);
    crate::featvec::append_global_signals(&mut sig_values, signals);
    let sig_input = build_input(vocab, &norm, None, &sig_tline, &sig_values, max_input_len);
    let mut sig_out = vec![vocab.score_token(1.0)];
    if let Some(toks) = crate::generate::sig_tokens_for_pub(template, target) {
        crate::featvec::encode_tokens_anonymized(&toks, vocab, &norm, &mut sig_out);
        sig_out.truncate(64);
        out.push(StatementSample {
            group: group.to_string(),
            node: SIG_NODE,
            target: target.to_string(),
            input: sig_input,
            output: sig_out,
        });
    }
    let mut prev_line: Option<Vec<usize>> = out.last().map(|s| s.output[1..].to_vec());

    for node_id in template.preorder() {
        let node = &template.stmts[node_id];
        let mut tline = Vec::new();
        template_line_pieces(node, vocab, &mut tline);
        let mut values = training_values(template, feats, node_id, target);
        crate::featvec::append_global_signals(&mut values, signals);
        let input = build_input(
            vocab,
            &norm,
            prev_line.as_deref(),
            &tline,
            &values,
            max_input_len,
        );
        let score = training_confidence(template, feats, node_id, target, prop_candidates);
        let mut output = vec![vocab.score_token(score)];
        match node.head_for(target) {
            Some(head) => {
                statement_line_pieces(node, &head, vocab, &norm, &mut output);
                output.truncate(64);
                prev_line = Some(output[1..].to_vec());
            }
            None => {
                // Absent statement: [CS_0] + the template line (paper §3.3).
                output.extend(tline.iter().copied());
                output.truncate(64);
            }
        }
        out.push(StatementSample {
            group: group.to_string(),
            node: node_id,
            target: target.to_string(),
            input,
            output,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_trains_and_generates() {
        let mut vega = Vega::train(VegaConfig::tiny());
        assert!(vega.templates.len() >= 30);
        assert!(!vega.train_samples.is_empty());
        assert!(!vega.verify_samples.is_empty());
        // Roughly a 75/25 split.
        let frac = vega.train_samples.len() as f64
            / (vega.train_samples.len() + vega.verify_samples.len()) as f64;
        assert!(frac > 0.6 && frac < 0.9, "train fraction {frac}");

        let backend = vega.generate_backend("RISCV");
        assert_eq!(backend.functions.len(), vega.templates.len());
        // Every module appears in the timing map (xCORE-only DIS absence is a
        // per-target evaluation matter, not a generation one).
        assert!(backend.module_times.len() >= 6);
        // At least some functions assemble into parseable ASTs even with a
        // barely-trained model (fallback signature path).
        let assembled = backend
            .functions
            .iter()
            .filter(|(_, f)| f.function.is_some())
            .count();
        assert!(assembled > 0, "no function assembled");
    }

    #[test]
    fn model_persistence_roundtrip_preserves_generation() {
        let mut vega = Vega::train(VegaConfig::tiny());
        let json = vega.model_mut().save_json();
        let a = vega.generate_backend("XCore");
        *vega.model_mut() = vega_model::CodeBe::load_json(&json).unwrap();
        let b = vega.generate_backend("XCore");
        for ((_, fa), (_, fb)) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.confidence, fb.confidence, "{}", fa.name);
            for (sa, sb) in fa.stmts.iter().zip(&fb.stmts) {
                assert_eq!(sa.line, sb.line);
            }
        }
    }

    #[test]
    fn with_model_reuses_a_checkpoint_and_validates_fit() {
        let mut trained = Vega::train(VegaConfig::tiny());
        let json = trained.model_mut().save_json();
        let a = trained.generate_backend("RI5CY");

        // Same config + saved checkpoint → identical generations, no stage 2.
        let checkpoint = vega_model::CodeBe::load_json(&json).unwrap();
        let mut served = Vega::with_model(VegaConfig::tiny(), checkpoint).unwrap();
        assert!(
            served.timings.model_creation < trained.timings.model_creation,
            "validation must be cheaper than training"
        );
        let b = served.generate_backend("RI5CY");
        for ((_, fa), (_, fb)) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.confidence, fb.confidence, "{}", fa.name);
            for (sa, sb) in fa.stmts.iter().zip(&fb.stmts) {
                assert_eq!(sa.line, sb.line);
            }
        }

        // A corpus with a different vocabulary must be rejected, not decoded
        // against re-indexed token ids.
        let mut other = VegaConfig::tiny();
        other.corpus.synthetic_targets = 2;
        let checkpoint = vega_model::CodeBe::load_json(&json).unwrap();
        let err = Vega::with_model(other, checkpoint).unwrap_err();
        assert!(err.msg.contains("vocabulary"), "{}", err.msg);
    }

    #[test]
    fn learn_target_extends_templates_and_samples() {
        let mut vega = Vega::train(VegaConfig::tiny());
        let before_samples = vega.train_samples.len();
        let reloc_targets = vega.templates["getRelocType"].template.targets.len();
        let (backend, desc) = {
            let rv = vega.corpus.target("RISCV").unwrap();
            (rv.backend.clone(), rv.descriptions.clone())
        };
        vega.learn_target("RISCV", &backend, &desc, 1);
        assert!(vega.train_samples.len() > before_samples);
        let t = &vega.templates["getRelocType"].template;
        assert_eq!(t.targets.len(), reloc_targets + 1);
        assert!(t.targets.iter().any(|x| x == "RISCV"));
        // Idempotent on the template side.
        vega.learn_target("RISCV", &backend, &desc, 0);
        assert_eq!(
            vega.templates["getRelocType"].template.targets.len(),
            reloc_targets + 1
        );
    }

    #[test]
    fn backend_split_reduces_training_targets() {
        let cfg_fg = VegaConfig::tiny();
        let mut cfg_be = VegaConfig::tiny();
        cfg_be.split = Split::Backend;
        let vega_fg = Vega::train(cfg_fg);
        let vega_be = Vega::train(cfg_be);
        let fg_members: usize = vega_fg
            .templates
            .values()
            .map(|b| b.template.targets.len())
            .sum();
        let be_members: usize = vega_be
            .templates
            .values()
            .map(|b| b.template.targets.len())
            .sum();
        assert!(be_members < fg_members);
        // Backend split trains on everything it kept; verification is empty.
        assert!(vega_be.verify_samples.is_empty());
    }
}
