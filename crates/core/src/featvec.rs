//! Stage 1c — Feature Representation (paper §3.2.3) and Eq. (1) confidence.
//!
//! Each statement template `T_k` of each target-specific implementation maps
//! to a feature vector `FV_k = ⟨T_k, V_k⟩`, serialized for the model as
//!
//! ```text
//! [CLS] prev-statement ﹍ [SEP] T_k (slots as [SV]) [SEP] v₁ [SEP] v₂ … [E2D]
//! ```
//!
//! with boolean values as `[TRUE]`/`[FALSE]` and absent string values as
//! `[NULL]`. The preceding statement supplies the *context* the paper argues
//! statement generation depends on (§2.4). The output sequence is
//! `[CS_k] tokens(S_k)` — a quantized Eq. (1) confidence score followed by
//! the statement — or `[CS_0] tokens(T_k)` for absent statements.

use crate::features::{slot_value_string, GlobalSignals, TemplateFeatures};
use crate::template::{FunctionTemplate, PatTok, StmtTemplate};
use std::collections::BTreeMap;
use vega_cpplite::{StmtKind, Token};
use vega_model::{string_to_pieces, token_to_pieces, Special, TargetNorm, Vocab};

/// Default candidate-set size assumed for slots whose property could not be
/// discovered (keeps Eq. (1) meaningfully below 1).
pub const UNDISCOVERED_N: usize = 8;

/// Node id used for the signature pseudo-statement.
pub const SIG_NODE: usize = usize::MAX;

/// One training/inference sample for a statement template.
#[derive(Debug, Clone)]
pub struct StatementSample {
    /// Function group name.
    pub group: String,
    /// Template node id ([`SIG_NODE`] for the signature).
    pub node: usize,
    /// Target this sample describes.
    pub target: String,
    /// Encoded input sequence.
    pub input: Vec<usize>,
    /// Encoded output sequence (score token + statement pieces).
    pub output: Vec<usize>,
}

/// Renders a statement template's line pieces with `[SV]` markers.
pub fn template_line_pieces(node: &StmtTemplate, vocab: &Vocab, out: &mut Vec<usize>) {
    let (prefix, suffix): (&[&str], &[&str]) = match node.kind {
        StmtKind::Simple => (&[], &[";"]),
        StmtKind::Return => (&["return"], &[";"]),
        StmtKind::If => (&["if", "("], &[")", "{"]),
        StmtKind::Switch => (&["switch", "("], &[")", "{"]),
        StmtKind::While => (&["while", "("], &[")", "{"]),
        StmtKind::For => (&["for", "("], &[")", "{"]),
        StmtKind::Case => (&["case"], &[":"]),
        StmtKind::Default => (&["default"], &[":"]),
        StmtKind::Block => (&["{"], &[]),
        StmtKind::Break => (&["break"], &[";"]),
    };
    for p in prefix {
        encode_token_pieces(&Token::ident(*p), vocab, out);
    }
    for pt in &node.pattern {
        match pt {
            PatTok::Common(t) => encode_token_pieces(t, vocab, out),
            PatTok::Slot(_) => out.push(vocab.special(Special::Slot)),
        }
    }
    for p in suffix {
        let tok = if p.len() == 1 && !p.chars().next().unwrap().is_alphabetic() {
            match *p {
                ";" => Token::Punct(";"),
                ":" => Token::Punct(":"),
                "{" => Token::Punct("{"),
                ")" => Token::Punct(")"),
                _ => Token::ident(*p),
            }
        } else {
            Token::ident(*p)
        };
        encode_token_pieces(&tok, vocab, out);
    }
}

fn encode_token_pieces(t: &Token, vocab: &Vocab, out: &mut Vec<usize>) {
    for p in token_to_pieces(t) {
        vocab.encode_piece(&p, out);
    }
}

/// Encodes a full statement line (structure + head tokens) for a target,
/// with the target's own name anonymized (see [`TargetNorm`]).
pub fn statement_line_pieces(
    node: &StmtTemplate,
    head: &[Token],
    vocab: &Vocab,
    norm: &TargetNorm,
    out: &mut Vec<usize>,
) {
    let stmt = vega_cpplite::Stmt::new(node.kind, head.to_vec(), Vec::new());
    encode_tokens_anonymized(&stmt.line_tokens(), vocab, norm, out);
}

/// Encodes a token sequence with piece-aligned target-name anonymization.
pub fn encode_tokens_anonymized(
    tokens: &[Token],
    vocab: &Vocab,
    norm: &TargetNorm,
    out: &mut Vec<usize>,
) {
    let pieces = norm.anonymize_pieces(&vega_model::tokens_to_pieces(tokens));
    for p in pieces {
        vocab.encode_piece(&p, out);
    }
}

/// The property values `V_k` of one statement for one target, already
/// resolved to strings (None = NULL).
#[derive(Debug, Clone, Default)]
pub struct ResolvedValues {
    /// Per property index: boolean (Some(b)) or string (Some string) value.
    pub values: Vec<ResolvedValue>,
}

/// One resolved property value.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedValue {
    /// Target-independent boolean.
    Bool(bool),
    /// Target-dependent string value.
    Str(String),
    /// Value absent for this target/statement.
    Null,
}

/// Appends a target's global signals to a resolved value vector.
pub fn append_global_signals(values: &mut ResolvedValues, signals: &GlobalSignals) {
    for &b in &signals.flags {
        values.values.push(ResolvedValue::Bool(b));
    }
    for f in &signals.fields {
        values.values.push(match f {
            Some(v) => ResolvedValue::Str(v.clone()),
            None => ResolvedValue::Null,
        });
    }
}

/// Resolves `V_k` for a statement of an *existing* target (training): slot
/// values come from the implementation itself.
pub fn training_values(
    template: &FunctionTemplate,
    feats: &TemplateFeatures,
    node_id: usize,
    target: &str,
) -> ResolvedValues {
    let mut values = vec![ResolvedValue::Null; feats.props.len()];
    if let Some(bools) = feats.bool_values.get(target) {
        for (i, prop) in feats.props.iter().enumerate() {
            if prop.is_bool {
                if let Some(b) = bools.get(i) {
                    values[i] = ResolvedValue::Bool(*b);
                }
            }
        }
    }
    if node_id != SIG_NODE {
        let node = &template.stmts[node_id];
        for (slot_id, slot) in node.slots.iter().enumerate() {
            let Some(&prop_idx) = feats.slot_props.get(&(node_id, slot_id)) else {
                continue;
            };
            if let Some(v) = slot.values.get(target) {
                let s = slot_value_string(v);
                if !s.is_empty() {
                    values[prop_idx] = ResolvedValue::Str(s);
                }
            }
        }
    }
    ResolvedValues { values }
}

/// Builds the encoded input sequence from its parts.
pub fn build_input(
    vocab: &Vocab,
    norm: &TargetNorm,
    prev_line: Option<&[usize]>,
    template_line: &[usize],
    values: &ResolvedValues,
    max_len: usize,
) -> Vec<usize> {
    let sep = vocab.special(Special::Sep);
    let mut out = vec![vocab.special(Special::Cls)];
    match prev_line {
        Some(p) => out.extend(p.iter().copied().take(24)),
        None => out.push(vocab.special(Special::Null)),
    }
    out.push(sep);
    out.extend(template_line.iter().copied().take(40));
    for v in &values.values {
        out.push(sep);
        match v {
            ResolvedValue::Bool(true) => out.push(vocab.special(Special::True)),
            ResolvedValue::Bool(false) => out.push(vocab.special(Special::False)),
            ResolvedValue::Null => out.push(vocab.special(Special::Null)),
            ResolvedValue::Str(s) => {
                for p in norm.anonymize_pieces(&string_to_pieces(s)) {
                    vocab.encode_piece(&p, &mut out);
                }
            }
        }
    }
    out.push(vocab.special(Special::E2d));
    out.truncate(max_len);
    out
}

/// Eq. (1): the confidence score of statement `S_k`.
///
/// `CS(S_k) = (|T_k^com|/|T_k| + Σ_SV 1/(|T_k|·N(SV))) · has(S_k)`
pub fn confidence_score(node: &StmtTemplate, slot_candidates: &[usize], has: bool) -> f64 {
    if !has {
        return 0.0;
    }
    let total = node.total_token_count() as f64;
    let common = node.common_token_count() as f64;
    let mut score = common / total;
    for &n in slot_candidates {
        score += 1.0 / (total * n.max(1) as f64);
    }
    score.clamp(0.0, 1.0)
}

/// Candidate-set sizes for each slot of a node on one target, given the
/// per-slot property map and a per-property candidate count lookup.
pub fn slot_candidate_counts(
    node_id: usize,
    node: &StmtTemplate,
    feats: &TemplateFeatures,
    prop_candidates: &BTreeMap<usize, usize>,
) -> Vec<usize> {
    (0..node.slots.len())
        .map(|slot_id| {
            feats
                .slot_props
                .get(&(node_id, slot_id))
                .and_then(|p| prop_candidates.get(p).copied())
                .unwrap_or(UNDISCOVERED_N)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::SlotData;
    use vega_cpplite::lex;
    use vega_model::Vocab;

    fn node_with_slot() -> StmtTemplate {
        let mut slot = SlotData::default();
        slot.values
            .insert("ARM".into(), lex("fixup_arm_movt_hi16").unwrap());
        slot.values
            .insert("Mips".into(), lex("fixup_MIPS_HI16").unwrap());
        StmtTemplate {
            kind: StmtKind::Case,
            parent: None,
            in_else: false,
            pattern: vec![
                PatTok::Slot(1),
                PatTok::Common(Token::Punct("::")),
                PatTok::Slot(0),
            ],
            slots: vec![
                slot,
                SlotData {
                    values: [
                        ("ARM".to_string(), lex("ARM").unwrap()),
                        ("Mips".to_string(), lex("Mips").unwrap()),
                    ]
                    .into_iter()
                    .collect(),
                },
            ],
            present: vec!["ARM".into(), "Mips".into()],
            children: Vec::new(),
            else_children: Vec::new(),
        }
    }

    #[test]
    fn eq1_matches_paper_shape() {
        let node = node_with_slot();
        // |T| = common(2: case/:/:: → structural 2 + 1 common) … compute:
        let total = node.total_token_count() as f64;
        let common = node.common_token_count() as f64;
        // One slot with 66 candidates, one with 1 candidate.
        let cs = confidence_score(&node, &[66, 1], true);
        let expected = common / total + 1.0 / (total * 66.0) + 1.0 / total;
        assert!((cs - expected.clamp(0.0, 1.0)).abs() < 1e-12);
        // Absent statement scores exactly 0.
        assert_eq!(confidence_score(&node, &[66, 1], false), 0.0);
        // No slots → score 1.
        let simple = StmtTemplate {
            kind: StmtKind::Return,
            parent: None,
            in_else: false,
            pattern: lex("0").unwrap().into_iter().map(PatTok::Common).collect(),
            slots: vec![],
            present: vec!["ARM".into()],
            children: vec![],
            else_children: vec![],
        };
        assert_eq!(confidence_score(&simple, &[], true), 1.0);
    }

    #[test]
    fn input_sequence_layout() {
        let node = node_with_slot();
        let vocab = Vocab::build(["\u{2581}fixup", "\u{2581}case"]);
        let mut tline = Vec::new();
        template_line_pieces(&node, &vocab, &mut tline);
        assert!(tline.contains(&vocab.special(Special::Slot)));
        let values = ResolvedValues {
            values: vec![
                ResolvedValue::Bool(true),
                ResolvedValue::Str("fixup_arm_movt_hi16".into()),
                ResolvedValue::Null,
            ],
        };
        let norm = TargetNorm::new("DemoTgt");
        let input = build_input(&vocab, &norm, None, &tline, &values, 128);
        assert_eq!(input[0], vocab.special(Special::Cls));
        assert_eq!(input[1], vocab.special(Special::Null)); // no prev line
        assert!(input.contains(&vocab.special(Special::True)));
        assert!(input.contains(&vocab.special(Special::E2d)));
        let seps = input
            .iter()
            .filter(|&&i| i == vocab.special(Special::Sep))
            .count();
        assert_eq!(seps, 1 + 3); // template sep + one per property
    }

    #[test]
    fn training_value_resolution_uses_slot_strings() {
        let node = node_with_slot();
        let template = FunctionTemplate {
            name: "f".into(),
            signature: Default::default(),
            stmts: vec![node],
            roots: vec![0],
            targets: vec!["ARM".into(), "Mips".into()],
        };
        let feats = TemplateFeatures {
            props: vec![crate::features::Property {
                name: "MCFixupKind".into(),
                is_bool: false,
                identified_site: "llvm/MC/MCFixup.h".into(),
                source: None,
                probe_token: None,
            }],
            bool_values: BTreeMap::new(),
            slot_props: [((0usize, 0usize), 0usize)].into_iter().collect(),
        };
        let vals = training_values(&template, &feats, 0, "ARM");
        assert_eq!(
            vals.values[0],
            ResolvedValue::Str("fixup_arm_movt_hi16".into())
        );
        let vals = training_values(&template, &feats, 0, "RISCV");
        assert_eq!(vals.values[0], ResolvedValue::Null);
    }
}
