//! Stage 1b — Feature Selection (paper §3.2.2, Algorithm 1).
//!
//! Properties characterize template statements. A property has an
//! *identified site* (its declaration in `LLVMDIRs`) and, per target, an
//! *update site* (where the target defines/overrides it in `TGTDIRs`) plus a
//! value. Target-independent properties are booleans over the template's
//! common code; target-dependent properties are strings bound to placeholder
//! slots, discovered through enum membership, TableGen `def` records,
//! assignment matching and partial string matching — exactly the three-case
//! search of Algorithm 1.

use crate::template::{FunctionTemplate, PatTok};
use std::collections::{BTreeMap, HashMap, HashSet};
use vega_corpus::{VirtualFs, LLVM_DIRS};
use vega_cpplite::{lex_lossy, Token};

/// How a target-dependent property's candidate values are found in a new
/// target's description files (the update-site recipe learned in Stage 1 and
/// replayed in Stage 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueSource {
    /// Members of the target enum correlated with the named LLVM type
    /// (e.g. `Fixups` ↔ `MCFixupKind`, target `VariantKind` ↔ LLVM
    /// `VariantKind`, `ELF_RELOC` entries ↔ `ELF`).
    TgtEnum {
        /// The LLVM-side type name (identified site).
        llvm_name: String,
    },
    /// Names of TableGen `def` records of the given class (e.g. every
    /// `def X : Instruction`).
    DefNames {
        /// The TableGen class.
        class: String,
    },
    /// RHS values of `field = …` assignments (e.g. `Mnemonic`, `Latency`,
    /// `Name`, `StackPointer`).
    Field {
        /// The assigned global/field name.
        field: String,
    },
    /// Constructed register names `RegPrefix + index`.
    RegNames,
}

/// One property of a function template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    /// Property name (a `PropList` entry).
    pub name: String,
    /// `true` for target-independent boolean properties.
    pub is_bool: bool,
    /// Identified site in `LLVMDIRs`.
    pub identified_site: String,
    /// Candidate-value recipe (target-dependent properties only).
    pub source: Option<ValueSource>,
    /// The common-code token that discovered this boolean property (used to
    /// re-evaluate it for a new target in Stage 3).
    pub probe_token: Option<String>,
}

/// One `PropList` entry harvested from `LLVMDIRs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropEntry {
    /// Class, enum or global name.
    pub name: String,
    /// The file declaring it (identified site).
    pub file: String,
}

/// The `PropList` plus LLVM enum-member reverse index.
#[derive(Debug, Clone, Default)]
pub struct PropCatalog {
    /// Name → entry.
    pub entries: HashMap<String, PropEntry>,
    /// LLVM enum member → owning enum name (`FirstTargetFixupKind` →
    /// `MCFixupKind`).
    pub enum_members: HashMap<String, String>,
}

/// Builds the `PropList` from the LLVM-provided files (Algorithm 1, line 5).
pub fn prop_catalog(llvm: &VirtualFs) -> PropCatalog {
    let mut cat = PropCatalog::default();
    for (path, content) in llvm.iter() {
        if !LLVM_DIRS.iter().any(|d| path.starts_with(d)) {
            continue;
        }
        let toks = lex_lossy(content);
        let mut i = 0;
        let mut enum_depth: i32 = -1; // brace depth of the current enum body
        let mut depth: i32 = 0;
        while i < toks.len() {
            match &toks[i] {
                Token::Punct("{") => {
                    depth += 1;
                    i += 1;
                    continue;
                }
                Token::Punct("}") => {
                    depth -= 1;
                    if enum_depth >= 0 && depth <= enum_depth {
                        enum_depth = -1;
                    }
                    i += 1;
                    continue;
                }
                Token::Ident(kw) if kw == "class" || kw == "enum" => {
                    if let Some(Token::Ident(name)) = toks.get(i + 1) {
                        cat.entries.entry(name.clone()).or_insert(PropEntry {
                            name: name.clone(),
                            file: path.to_string(),
                        });
                        if kw == "enum" {
                            enum_depth = depth;
                            // Record members up to the closing brace.
                            let mut j = i + 2;
                            let mut depth = 0;
                            while j < toks.len() {
                                match &toks[j] {
                                    Token::Punct("{") => depth += 1,
                                    Token::Punct("}") => break,
                                    Token::Ident(m) if depth == 1 => {
                                        // Skip RHS identifiers of `M = X`.
                                        let prev_is_eq = j > 0 && toks[j - 1].is_punct("=");
                                        if !prev_is_eq {
                                            cat.enum_members
                                                .entry(m.clone())
                                                .or_insert(name.clone());
                                        }
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                        }
                    }
                    i += 2;
                }
                // Globals: `X = <literal>` inside TableGen class bodies —
                // but enum members with explicit values are not globals.
                Token::Ident(name) => {
                    if enum_depth < 0
                        && toks.get(i + 1).is_some_and(|t| t.is_punct("="))
                        && matches!(toks.get(i + 2), Some(Token::Str(_) | Token::Int(_)))
                    {
                        cat.entries.entry(name.clone()).or_insert(PropEntry {
                            name: name.clone(),
                            file: path.to_string(),
                        });
                        i += 3;
                        continue;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    cat
}

/// An assignment `lhs = rhs` found in target description files.
#[derive(Debug, Clone, PartialEq)]
pub struct TgtAssign {
    /// LHS (field/global name).
    pub lhs: String,
    /// RHS literal, as a string (`"ARM"` → `ARM`, `12` → `12`).
    pub rhs: String,
    /// File (update site).
    pub file: String,
    /// The `def` record the assignment belongs to, if any.
    pub def_name: Option<String>,
}

/// A TableGen `def NAME : CLASS { … }` record.
#[derive(Debug, Clone, PartialEq)]
pub struct TgtDef {
    /// Record name (e.g. `ADDrr`).
    pub name: String,
    /// Class (e.g. `Instruction`).
    pub class: String,
    /// File.
    pub file: String,
}

/// An enum found in target description files (including the pseudo-enum of
/// `ELF_RELOC` entries, reported under the name `ELF`).
#[derive(Debug, Clone, PartialEq)]
pub struct TgtEnum {
    /// Enum name.
    pub name: String,
    /// Members in declaration order.
    pub members: Vec<String>,
    /// Identifiers referenced on member RHSs (`= FirstTargetFixupKind`).
    pub rhs_refs: Vec<String>,
    /// File.
    pub file: String,
}

/// Token-level index over one target's description files (`TGTDIRs`).
#[derive(Debug, Clone, Default)]
pub struct TgtIndex {
    /// All identifier spellings → first file containing them.
    pub idents: HashMap<String, String>,
    /// All assignments.
    pub assigns: Vec<TgtAssign>,
    /// All `def` records.
    pub defs: Vec<TgtDef>,
    /// All enums (plus the `ELF` relocation pseudo-enum).
    pub enums: Vec<TgtEnum>,
}

impl TgtIndex {
    /// Builds the index from a target's description file system.
    pub fn build(fs: &VirtualFs) -> Self {
        let mut ix = TgtIndex::default();
        for (path, content) in fs.iter() {
            let toks = lex_lossy(content);
            let mut cur_def: Option<String> = None;
            let mut i = 0;
            while i < toks.len() {
                if let Token::Ident(id) = &toks[i] {
                    ix.idents
                        .entry(id.clone())
                        .or_insert_with(|| path.to_string());
                }
                match &toks[i] {
                    Token::Ident(kw) if kw == "def" => {
                        if let (Some(Token::Ident(name)), Some(colon), Some(Token::Ident(class))) =
                            (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
                        {
                            if colon.is_punct(":") {
                                ix.defs.push(TgtDef {
                                    name: name.clone(),
                                    class: class.clone(),
                                    file: path.to_string(),
                                });
                                cur_def = Some(name.clone());
                            }
                        }
                        i += 1;
                    }
                    Token::Ident(kw) if kw == "enum" => {
                        if let Some(Token::Ident(name)) = toks.get(i + 1) {
                            let mut members = Vec::new();
                            let mut rhs_refs = Vec::new();
                            let mut j = i + 2;
                            while j < toks.len() && !toks[j].is_punct("}") {
                                if let Token::Ident(m) = &toks[j] {
                                    if j > 0 && toks[j - 1].is_punct("=") {
                                        rhs_refs.push(m.clone());
                                    } else {
                                        members.push(m.clone());
                                    }
                                }
                                j += 1;
                            }
                            ix.enums.push(TgtEnum {
                                name: name.clone(),
                                members,
                                rhs_refs,
                                file: path.to_string(),
                            });
                            i = j;
                        }
                        i += 1;
                    }
                    Token::Ident(kw) if kw == "ELF_RELOC" => {
                        // ELF_RELOC(NAME, N) — accumulate into the `ELF`
                        // pseudo-enum for this file.
                        if let (Some(p), Some(Token::Ident(name))) =
                            (toks.get(i + 1), toks.get(i + 2))
                        {
                            if p.is_punct("(") {
                                match ix.enums.iter_mut().find(|e| e.name == "ELF") {
                                    Some(e) => e.members.push(name.clone()),
                                    None => ix.enums.push(TgtEnum {
                                        name: "ELF".to_string(),
                                        members: vec![name.clone()],
                                        rhs_refs: Vec::new(),
                                        file: path.to_string(),
                                    }),
                                }
                            }
                        }
                        i += 1;
                    }
                    Token::Ident(lhs) if toks.get(i + 1).is_some_and(|t| t.is_punct("=")) => {
                        let rhs = match toks.get(i + 2) {
                            Some(Token::Str(s)) => Some(s.clone()),
                            Some(Token::Int(v)) => Some(v.to_string()),
                            _ => None,
                        };
                        if let Some(rhs) = rhs {
                            ix.assigns.push(TgtAssign {
                                lhs: lhs.clone(),
                                rhs,
                                file: path.to_string(),
                                def_name: cur_def.clone(),
                            });
                        }
                        i += 3;
                        continue;
                    }
                    Token::Punct("}") => {
                        cur_def = None;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
        }
        ix
    }

    /// Candidate values produced by a [`ValueSource`] for this target.
    pub fn candidates(&self, source: &ValueSource) -> Vec<String> {
        match source {
            ValueSource::TgtEnum { llvm_name } => self
                .correlated_enum(llvm_name)
                .map(|e| {
                    e.members
                        .iter()
                        // Skip count sentinels like `NumTargetFixupKinds`.
                        .filter(|m| !m.starts_with("Num"))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default(),
            ValueSource::DefNames { class } => self
                .defs
                .iter()
                .filter(|d| &d.class == class)
                .map(|d| d.name.clone())
                .collect(),
            ValueSource::Field { field } => self
                .assigns
                .iter()
                .filter(|a| &a.lhs == field)
                .map(|a| a.rhs.clone())
                .collect(),
            ValueSource::RegNames => {
                let mut out = Vec::new();
                for d in self.defs.iter().filter(|d| d.class == "RegisterClass") {
                    let prefix = self
                        .assigns
                        .iter()
                        .find(|a| a.def_name.as_deref() == Some(&d.name) && a.lhs == "RegPrefix")
                        .map(|a| a.rhs.clone());
                    let count = self
                        .assigns
                        .iter()
                        .find(|a| a.def_name.as_deref() == Some(&d.name) && a.lhs == "NumRegs")
                        .and_then(|a| a.rhs.parse::<u32>().ok());
                    if let (Some(p), Some(c)) = (prefix, count) {
                        for i in 0..c {
                            out.push(format!("{p}{i}"));
                        }
                    }
                }
                out
            }
        }
    }

    /// Finds this target's enum correlated with an LLVM type name: same name,
    /// or a member RHS referencing a member of that LLVM type, or the `ELF`
    /// pseudo-enum.
    pub fn correlated_enum(&self, llvm_name: &str) -> Option<&TgtEnum> {
        if let Some(e) = self.enums.iter().find(|e| e.name == llvm_name) {
            return Some(e);
        }
        // `Fixups` whose first member `= FirstTargetFixupKind`: the caller
        // passes the LLVM enum (`MCFixupKind`); accept any enum whose RHS
        // refs include a member of it. The catalog owns the member map, so we
        // take a conservative spelling-based shortcut: `FirstTargetFixupKind`
        // belongs to `MCFixupKind` in the miniature LLVM.
        if llvm_name == "MCFixupKind" {
            return self
                .enums
                .iter()
                .find(|e| e.rhs_refs.iter().any(|r| r == "FirstTargetFixupKind"));
        }
        None
    }
}

/// Lowercased alphanumeric normalization for partial matching.
fn normalized(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Longest common substring length of two normalized strings.
fn lcs_substring(a: &str, b: &str) -> usize {
    let (a, b): (Vec<u8>, Vec<u8>) = (a.bytes().collect(), b.bytes().collect());
    let mut best = 0usize;
    let mut prev = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        let mut cur = vec![0usize; b.len() + 1];
        for j in 1..=b.len() {
            if a[i - 1] == b[j - 1] {
                cur[j] = prev[j - 1] + 1;
                best = best.max(cur[j]);
            }
        }
        prev = cur;
    }
    best
}

/// Returns `true` if `tok` partially matches `rhs` (shared normalized
/// substring of length ≥ 5, the `IsPCRel` ↔ `OPERAND_PCREL` rule).
pub fn partial_match(tok: &str, rhs: &str) -> bool {
    let (a, b) = (normalized(tok), normalized(rhs));
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if a == b {
        return true;
    }
    // Containment only counts for substantial fragments — `r` ⊂ `srl` must
    // not bind a register prefix to a mnemonic.
    (b.len() >= 3 && a.contains(&b))
        || (a.len() >= 3 && b.contains(&a))
        || lcs_substring(&a, &b) >= 5
}

/// Re-evaluates a boolean property for a (possibly new) target: the probe
/// token appears in its description files, the property is assigned/declared
/// there, or the property lives purely in `LLVMDIRs`.
pub fn resolve_bool_for_target(prop: &Property, ix: &TgtIndex, catalog: &PropCatalog) -> bool {
    let probe_hit = prop
        .probe_token
        .as_ref()
        .is_some_and(|t| ix.idents.contains_key(t));
    probe_hit
        || ix.assigns.iter().any(|a| a.lhs == prop.name)
        || ix.enums.iter().any(|e| e.name == prop.name)
        || catalog.entries.contains_key(&prop.name)
}

/// The discovered features of one function template: the ordered property
/// list plus, per statement and per target, the property values.
#[derive(Debug, Clone)]
pub struct TemplateFeatures {
    /// Ordered properties (booleans first, then target-dependent strings).
    pub props: Vec<Property>,
    /// Boolean property values per target: `bool_values[target][prop_idx]`.
    pub bool_values: BTreeMap<String, Vec<bool>>,
    /// Per statement-template node id → per slot index → property index into
    /// `props` (if discovered).
    pub slot_props: HashMap<(usize, usize), usize>,
}

/// Maximum boolean properties kept per template.
const MAX_BOOL_PROPS: usize = 6;
/// Maximum target-dependent properties kept per template.
const MAX_DEP_PROPS: usize = 6;

/// Keywords and obvious locals never treated as property tokens.
fn is_stop_token(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "switch"
            | "case"
            | "default"
            | "return"
            | "break"
            | "while"
            | "for"
            | "unsigned"
            | "int"
            | "bool"
            | "const"
            | "true"
            | "false"
            | "void"
            | "StringRef"
    )
}

/// Runs feature selection for a template over every target in `tgt_indexes`.
pub fn select_features(
    template: &FunctionTemplate,
    catalog: &PropCatalog,
    tgt_indexes: &BTreeMap<String, TgtIndex>,
) -> TemplateFeatures {
    // ---- Target-independent (boolean) properties over common code --------
    let mut common_tokens: Vec<String> = Vec::new();
    let mut seen = HashSet::new();
    let mut visit_pattern = |pattern: &[PatTok], common_tokens: &mut Vec<String>| {
        for p in pattern {
            if let PatTok::Common(Token::Ident(id)) = p {
                if !is_stop_token(id) && seen.insert(id.clone()) {
                    common_tokens.push(id.clone());
                }
            }
        }
    };
    visit_pattern(&template.signature.pattern, &mut common_tokens);
    for s in &template.stmts {
        visit_pattern(&s.pattern, &mut common_tokens);
    }

    let mut bool_candidates: Vec<(Property, BTreeMap<String, bool>)> = Vec::new();
    for tok in &common_tokens {
        // A token names a property if it is in PropList directly, is a member
        // of an LLVM enum, or partial-matches a target assignment whose LHS
        // is in PropList.
        let mut prop_name: Option<String> = None;
        if catalog.entries.contains_key(tok) {
            prop_name = Some(tok.clone());
        } else if let Some(owner) = catalog.enum_members.get(tok) {
            prop_name = Some(owner.clone());
        } else {
            'outer: for ix in tgt_indexes.values() {
                for a in &ix.assigns {
                    if catalog.entries.contains_key(&a.lhs) && partial_match(tok, &a.rhs) {
                        prop_name = Some(a.lhs.clone());
                        break 'outer;
                    }
                }
            }
        }
        let Some(name) = prop_name else { continue };
        let identified_site = catalog
            .entries
            .get(&name)
            .map(|e| e.file.clone())
            .unwrap_or_default();
        if bool_candidates.iter().any(|(p, _)| p.name == name) {
            continue;
        }
        // Per-target truth: the property (or the matched assignment) exists
        // in the target's description files, or the raw token does.
        let prop = Property {
            name: name.clone(),
            is_bool: true,
            identified_site,
            source: None,
            probe_token: Some(tok.clone()),
        };
        let mut per_target = BTreeMap::new();
        for (target, ix) in tgt_indexes {
            per_target.insert(target.clone(), resolve_bool_for_target(&prop, ix, catalog));
        }
        bool_candidates.push((prop, per_target));
    }
    // Varying properties carry the presence signal; constant ones only take
    // up input budget. Keep varying ones first, cap the total.
    bool_candidates.sort_by_key(|(_, vals)| {
        let vary = vals.values().any(|v| *v) && vals.values().any(|v| !*v);
        u8::from(!vary)
    });
    bool_candidates.truncate(MAX_BOOL_PROPS);
    let mut bool_props: Vec<Property> = Vec::new();
    let mut bool_values: BTreeMap<String, Vec<bool>> = BTreeMap::new();
    for (prop, per_target) in bool_candidates {
        for (target, v) in &per_target {
            bool_values.entry(target.clone()).or_default().push(*v);
        }
        bool_props.push(prop);
    }

    // ---- Target-dependent (string) properties over slots ------------------
    let mut dep_props: Vec<Property> = Vec::new();
    let mut slot_props: HashMap<(usize, usize), usize> = HashMap::new();
    for (node_id, node) in template.stmts.iter().enumerate() {
        for (slot_id, slot) in node.slots.iter().enumerate() {
            // Vote across targets for the property this slot belongs to;
            // votes are weighted by specificity so a value like `4` binds to
            // `SpillSize` (few assignments) rather than `Latency` (many).
            let mut votes: BTreeMap<(String, String), (f64, usize)> = BTreeMap::new();
            let mut voters = 0usize;
            for (target, value) in &slot.values {
                let Some(ix) = tgt_indexes.get(target) else {
                    continue;
                };
                let value_str = slot_value_string(value);
                if value_str.is_empty() {
                    continue;
                }
                voters += 1;
                for (name, source_key, weight) in discover_slot_property(&value_str, ix, catalog) {
                    let e = votes.entry((name, source_key)).or_default();
                    e.0 += weight;
                    e.1 += 1;
                }
            }
            // A property must be supported by a meaningful share of the
            // slot's targets — one accidental partial match (`128` inside
            // `v128`) must not bind the whole slot.
            let min_support = if voters <= 1 { 1 } else { (voters / 4).max(2) };
            let Some(((name, source_key), _)) = votes
                .into_iter()
                .filter(|(_, (_, support))| *support >= min_support)
                .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            else {
                continue;
            };
            let source = decode_source_key(&source_key);
            let prop_idx = match dep_props.iter().position(|p| p.name == name) {
                Some(i) => i + 1_000_000, // marker: existing, fix below
                None => {
                    if dep_props.len() >= MAX_DEP_PROPS {
                        continue;
                    }
                    let identified_site = catalog
                        .entries
                        .get(&name)
                        .map(|e| e.file.clone())
                        .unwrap_or_default();
                    dep_props.push(Property {
                        name: name.clone(),
                        is_bool: false,
                        identified_site,
                        source: Some(source),
                        probe_token: None,
                    });
                    dep_props.len() - 1 + 1_000_000
                }
            };
            slot_props.insert((node_id, slot_id), prop_idx - 1_000_000);
        }
    }

    // Final property order: booleans then dependents; remap slot_props.
    let n_bool = bool_props.len();
    let mut props = bool_props;
    props.extend(dep_props);
    let slot_props = slot_props
        .into_iter()
        .map(|(k, v)| (k, v + n_bool))
        .collect();
    TemplateFeatures {
        props,
        bool_values,
        slot_props,
    }
}

/// A slot value as a single string (single identifiers and literals; scoped
/// values use their last identifier, e.g. `ARM::fixup_x` → `fixup_x`).
pub fn slot_value_string(tokens: &[Token]) -> String {
    let last_ident = tokens.iter().rev().find_map(|t| match t {
        Token::Ident(s) => Some(s.clone()),
        _ => None,
    });
    match last_ident {
        Some(s) => s,
        None => tokens
            .iter()
            .map(|t| match t {
                Token::Int(v) => v.to_string(),
                Token::Str(s) => s.clone(),
                t => t.spelling(),
            })
            .collect::<Vec<_>>()
            .join(""),
    }
}

fn encode_source_key(s: &ValueSource) -> String {
    match s {
        ValueSource::TgtEnum { llvm_name } => format!("enum:{llvm_name}"),
        ValueSource::DefNames { class } => format!("def:{class}"),
        ValueSource::Field { field } => format!("field:{field}"),
        ValueSource::RegNames => "regnames".to_string(),
    }
}

fn decode_source_key(s: &str) -> ValueSource {
    if let Some(n) = s.strip_prefix("enum:") {
        ValueSource::TgtEnum {
            llvm_name: n.to_string(),
        }
    } else if let Some(c) = s.strip_prefix("def:") {
        ValueSource::DefNames {
            class: c.to_string(),
        }
    } else if let Some(f) = s.strip_prefix("field:") {
        ValueSource::Field {
            field: f.to_string(),
        }
    } else {
        ValueSource::RegNames
    }
}

/// Algorithm 1 lines 25–40: properties a slot value could belong to for one
/// target, as `(property name, encoded source, vote weight)` triples.
fn discover_slot_property(
    value: &str,
    ix: &TgtIndex,
    catalog: &PropCatalog,
) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    // 1. Enum membership (incl. the ELF pseudo-enum).
    for e in &ix.enums {
        if e.members.iter().any(|m| m == value) {
            // Correlate with the LLVM-side property.
            let llvm_name = if catalog.entries.contains_key(&e.name) {
                Some(e.name.clone())
            } else if e
                .rhs_refs
                .iter()
                .any(|r| catalog.enum_members.contains_key(r))
            {
                e.rhs_refs
                    .iter()
                    .find_map(|r| catalog.enum_members.get(r).cloned())
            } else {
                None
            };
            if let Some(n) = llvm_name {
                out.push((
                    n.clone(),
                    encode_source_key(&ValueSource::TgtEnum { llvm_name: n }),
                    1.0,
                ));
            }
        }
    }
    // 2. TableGen def-record names.
    for d in &ix.defs {
        if d.name == value && catalog.entries.contains_key(&d.class) {
            out.push((
                d.class.clone(),
                encode_source_key(&ValueSource::DefNames {
                    class: d.class.clone(),
                }),
                1.0,
            ));
        }
    }
    // 3. Exact assignment RHS match, weighted by the field's specificity: a
    //    numeric value coinciding with one of many `Latency` assignments is
    //    weaker evidence than matching the target's single `SpillSize`.
    for a in &ix.assigns {
        if a.rhs == value && catalog.entries.contains_key(&a.lhs) {
            let field_count = ix.assigns.iter().filter(|b| b.lhs == a.lhs).count();
            out.push((
                a.lhs.clone(),
                encode_source_key(&ValueSource::Field {
                    field: a.lhs.clone(),
                }),
                1.0 / field_count.max(1) as f64,
            ));
        }
    }
    // 4. Constructed register names.
    if out.is_empty()
        && ix
            .candidates(&ValueSource::RegNames)
            .iter()
            .any(|r| r == value)
    {
        out.push((
            "RegPrefix".to_string(),
            encode_source_key(&ValueSource::RegNames),
            1.0,
        ));
    }
    // 5. Partial match against assignment RHS (the `ARM::…` → `Name = "ARM"`
    //    rule) — weakest, only when nothing better matched.
    if out.is_empty() {
        for a in &ix.assigns {
            if catalog.entries.contains_key(&a.lhs) && partial_match(value, &a.rhs) {
                out.push((
                    a.lhs.clone(),
                    encode_source_key(&ValueSource::Field {
                        field: a.lhs.clone(),
                    }),
                    0.5,
                ));
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::FunctionTemplate;
    use vega_corpus::{llvm_provided, Corpus, CorpusConfig};

    fn fixture() -> (Corpus, PropCatalog) {
        let c = Corpus::build(&CorpusConfig::tiny());
        let cat = prop_catalog(c.llvm_fs());
        (c, cat)
    }

    #[test]
    fn catalog_contains_motivating_example_props() {
        let cat = prop_catalog(&llvm_provided());
        assert!(cat.entries.contains_key("MCSymbolRefExpr"));
        assert!(cat.entries.contains_key("VariantKind"));
        assert!(cat.entries.contains_key("MCFixupKind"));
        assert!(cat.entries.contains_key("OperandType"));
        assert!(cat.entries.contains_key("Name"));
        assert_eq!(
            cat.enum_members.get("FirstTargetFixupKind"),
            Some(&"MCFixupKind".to_string())
        );
    }

    #[test]
    fn tgt_index_finds_enums_defs_assignments() {
        let (c, _) = fixture();
        let arm = c.target("ARM").unwrap();
        let ix = TgtIndex::build(&arm.descriptions);
        // Fixups enum correlated with MCFixupKind.
        let fix = ix.correlated_enum("MCFixupKind").expect("fixups enum");
        assert!(fix.members.iter().any(|m| m.starts_with("fixup_arm_")));
        // ELF pseudo-enum.
        let elf = ix.enums.iter().find(|e| e.name == "ELF").unwrap();
        assert!(elf.members.iter().any(|m| m == "R_ARM_NONE"));
        // Instruction defs.
        assert!(ix.defs.iter().any(|d| d.class == "Instruction"));
        // Name assignment.
        assert!(ix.assigns.iter().any(|a| a.lhs == "Name" && a.rhs == "ARM"));
    }

    #[test]
    fn partial_match_rules() {
        assert!(partial_match("IsPCRel", "OPERAND_PCREL"));
        assert!(partial_match("ARM", "ARM"));
        assert!(!partial_match("Kind", "OPERAND_PCREL"));
    }

    #[test]
    fn reloc_template_features_include_fixup_and_reloc_props() {
        let (c, cat) = fixture();
        let groups = c.function_groups(false);
        let (_, members) = &groups["getRelocType"];
        let t = FunctionTemplate::build("getRelocType", members);
        let mut ixs = BTreeMap::new();
        for target in &t.targets {
            ixs.insert(
                target.clone(),
                TgtIndex::build(&c.target(target).unwrap().descriptions),
            );
        }
        let feats = select_features(&t, &cat, &ixs);
        let names: Vec<&str> = feats.props.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"MCFixupKind"), "{names:?}");
        assert!(names.contains(&"ELF"), "{names:?}");
        assert!(!feats.slot_props.is_empty());
        // Candidate generation replays for a held-out target.
        let rv_ix = TgtIndex::build(&c.target("RISCV").unwrap().descriptions);
        let fixup_prop = feats
            .props
            .iter()
            .find(|p| p.name == "MCFixupKind" && !p.is_bool)
            .unwrap();
        let cands = rv_ix.candidates(fixup_prop.source.as_ref().unwrap());
        assert!(cands.iter().all(|f| f.starts_with("fixup_riscv_")));
        assert!(!cands.is_empty());
    }

    #[test]
    fn latency_template_uses_def_and_field_sources() {
        let (c, cat) = fixture();
        let groups = c.function_groups(false);
        let (_, members) = &groups["getInstrLatency"];
        let t = FunctionTemplate::build("getInstrLatency", members);
        let mut ixs = BTreeMap::new();
        for target in &t.targets {
            ixs.insert(
                target.clone(),
                TgtIndex::build(&c.target(target).unwrap().descriptions),
            );
        }
        let feats = select_features(&t, &cat, &ixs);
        let names: Vec<&str> = feats.props.iter().map(|p| p.name.as_str()).collect();
        assert!(
            names.contains(&"Instruction") || names.contains(&"Latency"),
            "{names:?}"
        );
    }
}

/// Global boolean feature flags appended to every template's feature vector
/// (the paper's V spans 345 properties shared across all templates; these
/// are the trait signals presence prediction needs).
pub const GLOBAL_FLAGS: &[&str] = &[
    "HasCompressed",
    "HasHWLoop",
    "HasSIMD",
    "HasMAC",
    "HasThreads",
    "HasFPU",
    "HasCMov",
    "HasForwarding",
];

/// Global string-valued fields appended likewise.
pub const GLOBAL_FIELDS: &[&str] = &["Endianness", "WordBits", "ImmBits"];

/// The global signal values of one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSignals {
    /// Per [`GLOBAL_FLAGS`] entry: the flag assignment is present and non-zero.
    pub flags: Vec<bool>,
    /// Per [`GLOBAL_FIELDS`] entry: the assigned value, if any.
    pub fields: Vec<Option<String>>,
}

/// Reads the global signals off a target's description index.
pub fn global_signals(ix: &TgtIndex) -> GlobalSignals {
    let flag_value = |name: &str| ix.assigns.iter().any(|a| a.lhs == name && a.rhs != "0");
    let field_value = |name: &str| {
        ix.assigns
            .iter()
            .find(|a| a.lhs == name)
            .map(|a| a.rhs.clone())
    };
    let mut flags: Vec<bool> = GLOBAL_FLAGS.iter().map(|f| flag_value(f)).collect();
    // Structural flag: the target declares its own symbol variant kinds
    // (drives the presence of the `Modifier` statement, the paper's S2).
    flags.push(ix.enums.iter().any(|e| e.name == "VariantKind"));
    GlobalSignals {
        flags,
        fields: GLOBAL_FIELDS.iter().map(|f| field_value(f)).collect(),
    }
}
