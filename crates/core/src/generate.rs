//! Stage 3 — Target-Specific Code Generation (paper §3.4).
//!
//! For a new target, VEGA sees only its description files. Per statement
//! template it (1) replays the learned update-site recipes to collect
//! candidate values from the new target's files, (2) selects the candidate
//! most similar in name to the values the slot took on training targets, (3)
//! builds the feature vector and lets CodeBE generate `[CS] statement`, and
//! (4) assembles the kept statements (score ≥ 0.5) back into a function
//! following the template's tree structure.

use crate::features::{
    global_signals, resolve_bool_for_target, PropCatalog, TemplateFeatures, TgtIndex, ValueSource,
};
use crate::featvec::{
    build_input, confidence_score, slot_candidate_counts, template_line_pieces, ResolvedValue,
    ResolvedValues, SIG_NODE,
};
use crate::template::{FunctionTemplate, PatTok, StmtTemplate};
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;
use vega_cpplite::{lex, parse_function, Function, Stmt, StmtKind, Token};
use vega_model::{split_ident, CodeBe, DecodeAbort, TargetNorm};

/// One generated statement with its confidence.
#[derive(Debug, Clone)]
pub struct GeneratedStmt {
    /// Template node id ([`SIG_NODE`] for the signature).
    pub node: usize,
    /// Decoded confidence score (0 when the model emitted none).
    pub score: f64,
    /// Decoded statement line (source text).
    pub line: String,
    /// Whether the statement survived the 0.5 threshold and was assembled.
    pub kept: bool,
}

/// A generated interface function with confidence metadata.
#[derive(Debug, Clone)]
pub struct GeneratedFunction {
    /// Interface name.
    pub name: String,
    /// The assembled function (None when assembly failed outright).
    pub function: Option<Function>,
    /// Per-template-node generation record (signature first).
    pub stmts: Vec<GeneratedStmt>,
    /// Function-level confidence (the first line's score, §3.4).
    pub confidence: f64,
    /// True when no single training target covers all kept statements — the
    /// paper's "accurate code derived from multiple existing targets".
    pub multi_source: bool,
}

/// Maximum decode length for one statement.
const DECODE_LEN: usize = 72;

/// Name-similarity between a candidate value and a set of reference values:
/// max Jaccard of lowercase subword pieces. Used for Stage 3 value selection
/// and by the ForkFlow baseline's renamer.
pub fn name_similarity(candidate: &str, train_values: &[String]) -> f64 {
    let cand: HashSet<String> = split_ident(candidate)
        .into_iter()
        .map(|p| p.to_lowercase())
        .filter(|p| p.chars().any(|c| c.is_alphanumeric()))
        .collect();
    if cand.is_empty() {
        return 0.0;
    }
    train_values
        .iter()
        .map(|tv| {
            let tvs: HashSet<String> = split_ident(tv)
                .into_iter()
                .map(|p| p.to_lowercase())
                .filter(|p| p.chars().any(|c| c.is_alphanumeric()))
                .collect();
            let inter = cand.intersection(&tvs).count();
            let union = cand.union(&tvs).count();
            if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            }
        })
        .fold(0.0, f64::max)
}

/// Generation-time state tracking recently chosen def names so that numeric
/// field values (latency, opcode, …) can be read off the right record.
#[derive(Debug)]
struct GenState {
    last_def: Option<String>,
    /// Whether `last_def` was inferred from a field value (an opcode number
    /// pinning an instruction) rather than chosen as a def name directly.
    last_def_from_field: bool,
    used_values: BTreeMap<usize, HashSet<String>>, // prop idx → consumed values
    /// The new target's name normalizer (for renaming fallback runs).
    new_norm: TargetNorm,
}

impl GenState {
    fn new(target_ns: &str) -> Self {
        GenState {
            last_def: None,
            last_def_from_field: false,
            used_values: BTreeMap::new(),
            new_norm: TargetNorm::new(target_ns),
        }
    }
}

/// Ranked candidate values for one slot (best first, capped).
fn slot_candidates_ranked(
    prop_idx: usize,
    source: &ValueSource,
    ix: &TgtIndex,
    train_values: &[String],
    state: &GenState,
    cap: usize,
) -> Vec<String> {
    // Def-scoped fields (latency/opcode of the instruction the previous
    // statement named) have a single right answer.
    if let ValueSource::Field { field } = source {
        if let Some(def) = &state.last_def {
            if let Some(a) = ix
                .assigns
                .iter()
                .find(|a| a.def_name.as_deref() == Some(def.as_str()) && &a.lhs == field)
            {
                return vec![a.rhs.clone()];
            }
        }
    }
    let mut candidates = ix.candidates(source);
    // Field values come in both original and lowercase spellings (assembly
    // names are conventionally lowercase; partial matching in the paper is
    // case-tolerant too).
    if matches!(source, ValueSource::Field { .. }) {
        let lowers: Vec<String> = candidates
            .iter()
            .map(|c| c.to_lowercase())
            .filter(|l| !candidates.contains(l))
            .collect();
        candidates.extend(lowers);
    }
    candidates.dedup();
    // A def pinned by a *field value* (the opcode number the previous case
    // named) is the near-certain answer for a def-name slot. A def chosen by
    // name must not hijack later def slots (`ADD` guarding a fold must still
    // let the body pick `ADDI`).
    if let ValueSource::DefNames { class } = source {
        if state.last_def_from_field {
            if let Some(def) = &state.last_def {
                if ix.defs.iter().any(|d| &d.name == def && &d.class == class) {
                    return vec![def.clone()];
                }
            }
        }
    }
    let used = state.used_values.get(&prop_idx);
    candidates.sort_by(|a, b| {
        let ka = (
            name_similarity(a, train_values),
            u8::from(!used.is_some_and(|u| u.contains(a))),
        );
        let kb = (
            name_similarity(b, train_values),
            u8::from(!used.is_some_and(|u| u.contains(b))),
        );
        kb.partial_cmp(&ka).unwrap()
    });
    candidates.truncate(cap);
    candidates
}

/// Marks a chosen value as consumed and tracks def scoping: choosing a def
/// name (`ADD`) or a uniquely-identifying field value (`Opcode = 7`) focuses
/// subsequent field/def slots on that record.
fn note_choice(
    prop_idx: usize,
    value: &str,
    source: &ValueSource,
    ix: &TgtIndex,
    state: &mut GenState,
) {
    state
        .used_values
        .entry(prop_idx)
        .or_default()
        .insert(value.to_string());
    if ix.defs.iter().any(|d| d.name == value) {
        state.last_def = Some(value.to_string());
        state.last_def_from_field = false;
        return;
    }
    if let ValueSource::Field { field } = source {
        let mut matching = ix
            .assigns
            .iter()
            .filter(|a| &a.lhs == field && a.rhs == value)
            .filter_map(|a| a.def_name.clone());
        if let (Some(def), None) = (matching.next(), matching.next()) {
            state.last_def = Some(def);
            state.last_def_from_field = true;
        }
    }
}

/// Resolves `V_k` for a *new* target in Stage 3.
#[allow(clippy::too_many_arguments)]
fn generation_values(
    template: &FunctionTemplate,
    feats: &TemplateFeatures,
    node_id: usize,
    ix: &TgtIndex,
    catalog: &PropCatalog,
    state: &mut GenState,
) -> ResolvedValues {
    let mut values = vec![ResolvedValue::Null; feats.props.len()];
    for (i, prop) in feats.props.iter().enumerate() {
        if prop.is_bool {
            values[i] = ResolvedValue::Bool(resolve_bool_for_target(prop, ix, catalog));
        }
    }
    if node_id != SIG_NODE {
        let node = &template.stmts[node_id];
        for (slot_id, slot) in node.slots.iter().enumerate() {
            let Some(&prop_idx) = feats.slot_props.get(&(node_id, slot_id)) else {
                continue;
            };
            let Some(source) = feats.props[prop_idx].source.as_ref() else {
                continue;
            };
            let train_values: Vec<String> = slot
                .values
                .values()
                .map(|v| crate::features::slot_value_string(v))
                .filter(|s| !s.is_empty())
                .collect();
            let ranked = slot_candidates_ranked(prop_idx, source, ix, &train_values, state, 8);
            if let Some(v) = ranked.first() {
                values[prop_idx] = ResolvedValue::Str(v.clone());
            }
        }
    }
    ResolvedValues { values }
}

/// The encoded feature-vector input for a function's *signature* on a new
/// target — exactly the id sequence [`generate_function`] feeds the model
/// first. Deterministic in its arguments and side-effect free, so it doubles
/// as a content address for generation caching: two requests with equal
/// signature inputs (same target description state, same template) replay the
/// same generation.
pub fn signature_feature_input(
    vocab: &vega_model::Vocab,
    target_ns: &str,
    template: &FunctionTemplate,
    feats: &TemplateFeatures,
    ix: &TgtIndex,
    catalog: &PropCatalog,
    max_input_len: usize,
) -> Vec<usize> {
    // SIG_NODE resolution never touches slot state, so a fresh GenState is
    // exactly what generate_function sees at this point.
    let mut state = GenState::new(target_ns);
    let norm = TargetNorm::new(target_ns);
    let signals = global_signals(ix);
    let sig_node = signature_node_for(template);
    let mut sig_values = generation_values(template, feats, SIG_NODE, ix, catalog, &mut state);
    crate::featvec::append_global_signals(&mut sig_values, &signals);
    let mut sig_tline = Vec::new();
    template_line_pieces(&sig_node, vocab, &mut sig_tline);
    build_input(vocab, &norm, None, &sig_tline, &sig_values, max_input_len)
}

/// Generates one function for a new target.
///
/// Infallible wrapper around [`try_generate_function`] for callers that set
/// no deadline: without one, the decode chain never aborts (the local
/// in-process path ignores deadlines, and backends only abort *at* one).
///
/// # Panics
/// Panics if the model's decode backend aborts despite the absent deadline.
pub fn generate_function(
    model: &mut CodeBe,
    target_ns: &str,
    template: &FunctionTemplate,
    feats: &TemplateFeatures,
    ix: &TgtIndex,
    catalog: &PropCatalog,
    max_input_len: usize,
) -> GeneratedFunction {
    try_generate_function(
        model,
        target_ns,
        template,
        feats,
        ix,
        catalog,
        max_input_len,
        None,
    )
    .expect("decode aborted without a deadline")
}

/// Generates one function for a new target, honoring `deadline` at token
/// boundaries when the model routes decode through a backend (see
/// [`CodeBe::try_generate`]). On abort no partial result escapes — the
/// caller gets the error and nothing cacheable.
///
/// # Errors
/// Returns [`DecodeAbort::Expired`] when the deadline passed mid-decode,
/// [`DecodeAbort::Broken`] when the backend failed.
#[allow(clippy::too_many_arguments)]
pub fn try_generate_function(
    model: &mut CodeBe,
    target_ns: &str,
    template: &FunctionTemplate,
    feats: &TemplateFeatures,
    ix: &TgtIndex,
    catalog: &PropCatalog,
    max_input_len: usize,
    deadline: Option<Instant>,
) -> Result<GeneratedFunction, DecodeAbort> {
    let obs = vega_obs::global();
    // Per-function timing is a span (nested under the caller's module span,
    // e.g. `pipeline.stage3.generate.SEL.function`), mirrored into the
    // `generate.function_seconds` histogram for quantiles.
    let fn_span = obs.span("function");
    let conf_buckets = vega_obs::Buckets::linear(0.0, 1.0, 20);
    let mut state = GenState::new(target_ns);
    let norm = TargetNorm::new(target_ns);
    let signals = global_signals(ix);
    let mut stmts: Vec<GeneratedStmt> = Vec::new();
    let mut prev_line_ids: Option<Vec<usize>> = None;

    // --- Signature -----------------------------------------------------------
    let input = signature_feature_input(
        &model.vocab,
        target_ns,
        template,
        feats,
        ix,
        catalog,
        max_input_len,
    );
    let out = model.try_generate(&input, DECODE_LEN, deadline)?;
    let (sig_score, sig_line) = split_output(model, &norm, &out);
    obs.observe_with("generate.confidence", &conf_buckets, sig_score);
    let sig_kept = sig_score >= 0.5;
    stmts.push(GeneratedStmt {
        node: SIG_NODE,
        score: sig_score,
        line: sig_line.clone(),
        kept: sig_kept,
    });
    // The first body statement's context is the signature line. Feed the
    // template-derived one (identical to what training saw) rather than the
    // raw decode, so one bad signature cannot poison the whole body.
    if let Some(seed) = template.targets.first() {
        if let Some(toks) = sig_tokens_for_pub(template, seed) {
            let seed_norm = TargetNorm::new(seed);
            let pieces = seed_norm.anonymize_pieces(&vega_model::tokens_to_pieces(&toks));
            let mut ids = Vec::new();
            for p in pieces {
                model.vocab.encode_piece(&p, &mut ids);
            }
            ids.truncate(64);
            prev_line_ids = Some(ids);
        }
    }
    if prev_line_ids.is_none() && sig_kept {
        prev_line_ids = Some(out[score_offset(&out, model)..].to_vec());
    }

    // --- Body statements in preorder -----------------------------------------
    let preorder = template.preorder();
    let mut kept_heads: BTreeMap<usize, Vec<Token>> = BTreeMap::new();
    for node_id in preorder {
        let node = &template.stmts[node_id];
        let mut values = generation_values(template, feats, node_id, ix, catalog, &mut state);
        crate::featvec::append_global_signals(&mut values, &signals);
        let mut tline = Vec::new();
        template_line_pieces(node, &model.vocab, &mut tline);
        let input = build_input(
            &model.vocab,
            &norm,
            prev_line_ids.as_deref(),
            &tline,
            &values,
            max_input_len,
        );
        // 1. Presence + confidence: the first decoded token is the score.
        let head_decode = model.try_generate(&input, 2, deadline)?;
        let score = head_decode
            .first()
            .and_then(|&id| model.vocab.score_of(id))
            .unwrap_or(0.0);
        obs.observe_with("generate.confidence", &conf_buckets, score);
        let kept = score >= 0.5;
        if !kept {
            // Record the prior-best realization so Err-CS (dropped but
            // actually correct) remains measurable.
            let mut chosen: BTreeMap<usize, Vec<Token>> = BTreeMap::new();
            for (slot_id, _) in node.slots.iter().enumerate() {
                let (_, runs) = slot_candidate_runs(node_id, slot_id, node, feats, ix, &state);
                chosen.insert(slot_id, runs.first().cloned().unwrap_or_default());
            }
            let line = Stmt::new(node.kind, fill_pattern(node, &chosen), Vec::new()).head_line();
            stmts.push(GeneratedStmt {
                node: node_id,
                score,
                line,
                kept: false,
            });
            continue;
        }
        // 2. Template-guided realization: the statement is the template with
        // each slot filled by the candidate CodeBE assigns the highest
        // probability (§2.4: "selecting the correct combination of values for
        // each SV_k … heavily depends on the statement's context").
        let score_id = head_decode.first().copied();
        let (head, out_ids) = realize_statement(
            model, &norm, &input, node, node_id, feats, ix, score_id, &mut state, deadline,
        )?;
        let line = Stmt::new(node.kind, head.clone(), Vec::new()).head_line();
        // A realization no candidate could make parseable is recorded but
        // cannot be assembled (it would corrupt the function AST).
        if parse_generated_head(node.kind, &line).is_some() {
            kept_heads.insert(node_id, head);
            prev_line_ids = Some(out_ids);
        }
        stmts.push(GeneratedStmt {
            node: node_id,
            score,
            line,
            kept: true,
        });
    }

    // --- Assembly -------------------------------------------------------------
    let body = assemble(template, &template.roots, &kept_heads);
    let function = assemble_function(template, target_ns, &stmts[0], body);

    let multi_source = compute_multi_source(template, &kept_heads);
    obs.observe("generate.function_seconds", fn_span.finish().as_secs_f64());
    obs.counter_add("generate.functions", 1);
    Ok(GeneratedFunction {
        name: template.name.clone(),
        function,
        confidence: sig_score,
        stmts,
        multi_source,
    })
}

/// Candidate token runs for one slot of a node: discovered new-target values
/// when the slot has a property, the slot's training token runs otherwise
/// (right for target-independent literals like field masks).
fn slot_candidate_runs(
    node_id: usize,
    slot_id: usize,
    node: &StmtTemplate,
    feats: &TemplateFeatures,
    ix: &TgtIndex,
    state: &GenState,
) -> (Option<usize>, Vec<Vec<Token>>) {
    let slot = &node.slots[slot_id];
    let train_values: Vec<String> = slot
        .values
        .values()
        .map(|v| crate::features::slot_value_string(v))
        .filter(|s| !s.is_empty())
        .collect();
    // Training runs shape candidate typing: a slot whose values are string
    // literals must be filled with a string literal, not a bare token.
    let exemplar = slot.values.values().next();
    let typed_run = |c: &str| -> Vec<Token> {
        match exemplar.map(Vec::as_slice) {
            Some([Token::Str(_)]) => vec![Token::Str(c.to_string())],
            Some([Token::Int(_)]) => c
                .parse::<i64>()
                .map(|v| vec![Token::Int(v)])
                .unwrap_or_else(|_| vec![Token::ident(c)]),
            _ => lex(c).unwrap_or_else(|_| vec![Token::ident(c)]),
        }
    };
    if let Some(&prop_idx) = feats.slot_props.get(&(node_id, slot_id)) {
        if let Some(source) = feats.props[prop_idx].source.as_ref() {
            let ranked = slot_candidates_ranked(prop_idx, source, ix, &train_values, state, 8);
            if !ranked.is_empty() {
                let runs = ranked.iter().map(|c| typed_run(c)).collect();
                return (Some(prop_idx), runs);
            }
        }
    }
    // Fallback: distinct training runs, most common first, with the source
    // target's own name rewritten onto this target (a run like
    // `Syn00::C_ADD` must arrive as `<NS>::C_ADD`).
    let mut counts: BTreeMap<Vec<Token>, usize> = BTreeMap::new();
    for (src_target, v) in &slot.values {
        let src_norm = TargetNorm::new(src_target);
        let renamed: Vec<Token> = v
            .iter()
            .map(|t| match t {
                Token::Ident(id) => Token::Ident(state.new_norm.restore(&src_norm.anonymize(id))),
                Token::Str(st) => Token::Str(state.new_norm.restore(&src_norm.anonymize(st))),
                other => other.clone(),
            })
            .collect();
        *counts.entry(renamed).or_default() += 1;
    }
    let mut runs: Vec<(Vec<Token>, usize)> = counts.into_iter().collect();
    runs.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    (None, runs.into_iter().map(|(r, _)| r).take(8).collect())
}

/// Realizes a statement's head by filling each slot with the candidate the
/// model scores highest (sequential left-to-right choice, remaining slots
/// held at their prior-best). Fallible because candidate scoring runs the
/// model, which can abort at `deadline` when routed through a backend.
#[allow(clippy::too_many_arguments)]
fn realize_statement(
    model: &mut CodeBe,
    norm: &TargetNorm,
    input: &[usize],
    node: &StmtTemplate,
    node_id: usize,
    feats: &TemplateFeatures,
    ix: &TgtIndex,
    score_id: Option<usize>,
    state: &mut GenState,
    deadline: Option<Instant>,
) -> Result<(Vec<Token>, Vec<usize>), DecodeAbort> {
    // Collect per-slot candidates (pattern order).
    let slot_ids: Vec<usize> = node
        .pattern
        .iter()
        .filter_map(|p| match p {
            PatTok::Slot(i) => Some(*i),
            PatTok::Common(_) => None,
        })
        .collect();
    let mut options: BTreeMap<usize, (Option<usize>, Vec<Vec<Token>>)> = BTreeMap::new();
    for &sid in &slot_ids {
        options.insert(
            sid,
            slot_candidate_runs(node_id, sid, node, feats, ix, state),
        );
    }
    // Current assignment: prior-best everywhere.
    let mut chosen: BTreeMap<usize, Vec<Token>> = BTreeMap::new();
    for (&sid, (_, runs)) in &options {
        chosen.insert(sid, runs.first().cloned().unwrap_or_default());
    }
    let realize_ids = |model: &CodeBe, chosen: &BTreeMap<usize, Vec<Token>>| -> Vec<usize> {
        let head = fill_pattern(node, chosen);
        let stmt = Stmt::new(node.kind, head, Vec::new());
        let mut ids = Vec::new();
        crate::featvec::encode_tokens_anonymized(&stmt.line_tokens(), &model.vocab, norm, &mut ids);
        ids.truncate(63);
        ids
    };
    // Trained outputs begin with a score token; candidates are scored in
    // the same frame so the comparison is in-distribution.
    let with_score = |ids: &[usize]| -> Vec<usize> {
        match score_id {
            Some(sid) => {
                let mut v = Vec::with_capacity(ids.len() + 1);
                v.push(sid);
                v.extend_from_slice(ids);
                v
            }
            None => ids.to_vec(),
        }
    };
    // Choose sequentially, scoring full realizations with the model; only
    // candidates whose realization stays parseable are eligible.
    let line_ok = |chosen: &BTreeMap<usize, Vec<Token>>| -> bool {
        let head = fill_pattern(node, chosen);
        parse_generated_head(
            node.kind,
            &Stmt::new(node.kind, head, Vec::new()).head_line(),
        )
        .is_some()
    };
    for &sid in &slot_ids {
        let (_, runs) = &options[&sid];
        if runs.len() > 1 {
            let mut best: Option<(f32, usize)> = None;
            for (ci, cand) in runs.iter().enumerate() {
                let mut trial = chosen.clone();
                trial.insert(sid, cand.clone());
                if !line_ok(&trial) {
                    continue;
                }
                let ids = with_score(&realize_ids(model, &trial));
                let lp =
                    model.try_sequence_logprob(input, &ids, deadline)? / ids.len().max(1) as f32;
                if best.is_none() || lp > best.unwrap().0 {
                    best = Some((lp, ci));
                }
            }
            if let Some((_, ci)) = best {
                chosen.insert(sid, runs[ci].clone());
            }
        }
        // Track consumption / def scoping for later slots and statements.
        if let (Some(prop_idx), _) = options[&sid] {
            if let Some(source) = feats.props[prop_idx].source.as_ref() {
                let v = crate::features::slot_value_string(&chosen[&sid]);
                note_choice(prop_idx, &v, source, ix, state);
            }
        }
    }
    let mut head = fill_pattern(node, &chosen);
    // Nodes present in a single training target can carry that target's name
    // inside *common* tokens (nothing existed to diff them against); rename
    // those onto the new target.
    if node.present.len() == 1 {
        let src_norm = TargetNorm::new(&node.present[0]);
        for t in &mut head {
            match t {
                Token::Ident(id) => *id = state.new_norm.restore(&src_norm.anonymize(id)),
                Token::Str(st) => *st = state.new_norm.restore(&src_norm.anonymize(st)),
                _ => {}
            }
        }
    }
    let out_ids = {
        let stmt = Stmt::new(node.kind, head.clone(), Vec::new());
        let mut ids = Vec::new();
        crate::featvec::encode_tokens_anonymized(&stmt.line_tokens(), &model.vocab, norm, &mut ids);
        ids.truncate(63);
        ids
    };
    Ok((head, out_ids))
}

/// Instantiates a node's pattern with a slot assignment.
fn fill_pattern(node: &StmtTemplate, chosen: &BTreeMap<usize, Vec<Token>>) -> Vec<Token> {
    let mut out = Vec::with_capacity(node.pattern.len() + 4);
    for p in &node.pattern {
        match p {
            PatTok::Common(t) => out.push(t.clone()),
            PatTok::Slot(i) => out.extend(chosen.get(i).cloned().unwrap_or_default()),
        }
    }
    out
}

/// The signature rendered as a pseudo statement-template node.
pub fn signature_node_for(template: &FunctionTemplate) -> StmtTemplate {
    StmtTemplate {
        kind: StmtKind::Simple,
        parent: None,
        in_else: false,
        pattern: template.signature.pattern.clone(),
        slots: template.signature.slots.clone(),
        present: template.targets.clone(),
        children: Vec::new(),
        else_children: Vec::new(),
    }
}

fn score_offset(out: &[usize], model: &CodeBe) -> usize {
    usize::from(
        out.first()
            .is_some_and(|&id| model.vocab.score_of(id).is_some()),
    )
}

/// Splits a decoded output into (score, statement text), restoring the
/// target's name for the anonymization sentinels.
fn split_output(model: &CodeBe, norm: &TargetNorm, out: &[usize]) -> (f64, String) {
    let score = out
        .first()
        .and_then(|&id| model.vocab.score_of(id))
        .unwrap_or(0.0);
    let rest = &out[score_offset(out, model)..];
    let spellings = model.vocab.decode_spellings(rest);
    (score, norm.restore(&spellings.join(" ")))
}

/// Parses a generated line back into head tokens according to the template
/// node's statement kind; `None` when the line is hopeless.
pub fn parse_generated_head(kind: StmtKind, line: &str) -> Option<Vec<Token>> {
    let toks = lex(line).ok()?;
    let strip = |toks: &[Token], lead: &[&str], trail: &[&str]| -> Vec<Token> {
        let mut start = 0usize;
        for l in lead {
            if toks
                .get(start)
                .is_some_and(|t| t.is_ident(l) || t.is_punct(l))
            {
                start += 1;
            }
        }
        let mut end = toks.len();
        for t in trail.iter().rev() {
            if end > start && (toks[end - 1].is_ident(t) || toks[end - 1].is_punct(t)) {
                end -= 1;
            }
        }
        toks[start..end].to_vec()
    };
    let head = match kind {
        StmtKind::Simple => strip(&toks, &[], &[";"]),
        StmtKind::Return => strip(&toks, &["return"], &[";"]),
        StmtKind::If => strip(&toks, &["if", "("], &[")", "{"]),
        StmtKind::Switch => strip(&toks, &["switch", "("], &[")", "{"]),
        StmtKind::While => strip(&toks, &["while", "("], &[")", "{"]),
        StmtKind::For => strip(&toks, &["for", "("], &[")", "{"]),
        StmtKind::Case => strip(&toks, &["case"], &[":"]),
        StmtKind::Default | StmtKind::Break | StmtKind::Block => Vec::new(),
    };
    // Validate: the head must render into a line the parser accepts, or
    // downstream assembly would produce an unparseable function.
    let probe = Stmt::new(kind, head.clone(), Vec::new());
    let full = match kind {
        StmtKind::If | StmtKind::Switch | StmtKind::While | StmtKind::For | StmtKind::Block => {
            format!("{} }}", probe.head_line())
        }
        StmtKind::Case | StmtKind::Default => format!("switch (x) {{ {} }}", probe.head_line()),
        _ => probe.head_line(),
    };
    // Heads must also be *expression*-parseable for their kind, or the
    // interpreter would abort the whole surrounding construct on a malformed
    // fragment like `case MVT:: :`.
    let expr_ok = match kind {
        StmtKind::Simple => head.is_empty() || vega_cpplite::parse_head_expr(&head).is_ok(),
        StmtKind::Return => head.is_empty() || vega_cpplite::parse_expr_tokens(&head).is_ok(),
        StmtKind::If | StmtKind::While | StmtKind::Case | StmtKind::Switch => {
            vega_cpplite::parse_expr_tokens(&head).is_ok()
        }
        _ => true,
    };
    if !expr_ok {
        return None;
    }
    let reparsed = vega_cpplite::parse_stmts(&full).ok()?;
    // The line must reparse as exactly one statement *of the template’s
    // kind* — a Simple head spelling `return 0` would silently change kind
    // on the next parse and break AST round-tripping.
    match reparsed.as_slice() {
        [one] if one.kind == kind => Some(head),
        [vega_cpplite::Stmt {
            kind: StmtKind::Switch,
            children,
            ..
        }] if matches!(kind, StmtKind::Case | StmtKind::Default)
            && children.len() == 1
            && children[0].kind == kind =>
        {
            Some(head)
        }
        _ => None,
    }
}

/// Rebuilds the statement tree over kept nodes.
fn assemble(
    template: &FunctionTemplate,
    ids: &[usize],
    kept_heads: &BTreeMap<usize, Vec<Token>>,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for &id in ids {
        let node = &template.stmts[id];
        let Some(head) = kept_heads.get(&id) else {
            continue;
        };
        let mut s = Stmt::new(
            node.kind,
            head.clone(),
            assemble(template, &node.children, kept_heads),
        );
        s.else_children = assemble(template, &node.else_children, kept_heads);
        out.push(s);
    }
    out
}

/// Builds the final [`Function`]: parse the generated signature; fall back to
/// the template's seed-target signature (renamed onto the new target) when
/// the generated one is malformed.
fn assemble_function(
    template: &FunctionTemplate,
    target_ns: &str,
    sig: &GeneratedStmt,
    body: Vec<Stmt>,
) -> Option<Function> {
    let new_norm = TargetNorm::new(target_ns);
    let try_parse = |sig_text: &str| -> Option<Function> {
        let text = format!("{} }}", ensure_open_brace(sig_text));
        parse_function(&text).ok()
    };
    // The interface contract (return type, parameters) comes from the
    // template — the paper notes VEGA's templates "correctly specify names,
    // parameters, and types" even when statements are wrong. The generated
    // signature line still carries the confidence score.
    let template_sig = {
        let seed = template.targets.first()?;
        let seed_norm = TargetNorm::new(seed);
        let toks = sig_tokens_for_pub(template, seed)?;
        let text = new_norm.restore(&seed_norm.anonymize(&vega_cpplite::render_tokens(&toks)));
        try_parse(&text)?
    };
    let mut f =
        if sig.kept { try_parse(&sig.line) } else { None }.unwrap_or_else(|| template_sig.clone());
    f.ret = template_sig.ret;
    f.params = template_sig.params;
    f.name = template.name.clone();
    f.body = body;
    Some(f)
}

fn ensure_open_brace(sig: &str) -> String {
    let t = sig.trim_end();
    if t.ends_with('{') {
        t.to_string()
    } else {
        format!("{t} {{")
    }
}

/// The signature token sequence a given target had (slots substituted).
pub fn sig_tokens_for_pub(template: &FunctionTemplate, target: &str) -> Option<Vec<Token>> {
    let mut out = Vec::new();
    for p in &template.signature.pattern {
        match p {
            PatTok::Common(t) => out.push(t.clone()),
            PatTok::Slot(i) => {
                let v = template.signature.slots.get(*i)?.values.get(target)?;
                out.extend(v.iter().cloned());
            }
        }
    }
    Some(out)
}

/// True when no single training target contains every kept statement.
fn compute_multi_source(
    template: &FunctionTemplate,
    kept_heads: &BTreeMap<usize, Vec<Token>>,
) -> bool {
    if kept_heads.is_empty() {
        return false;
    }
    !template.targets.iter().any(|t| {
        kept_heads
            .keys()
            .all(|&id| template.stmts[id].present.iter().any(|p| p == t))
    })
}

/// Confidence labels for training outputs (Eq. (1) per target) — exported so
/// Stage 2 shares the identical computation.
pub fn training_confidence(
    template: &FunctionTemplate,
    feats: &TemplateFeatures,
    node_id: usize,
    target: &str,
    tgt_candidates: &BTreeMap<usize, usize>,
) -> f64 {
    if node_id == SIG_NODE {
        return if template.targets.iter().any(|t| t == target) {
            1.0
        } else {
            0.0
        };
    }
    let node = &template.stmts[node_id];
    let has = template.has(node_id, target);
    let counts = slot_candidate_counts(node_id, node, feats, tgt_candidates);
    confidence_score(node, &counts, has)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_generated_head_strips_structure() {
        let head =
            parse_generated_head(StmtKind::Case, "case RISCV :: fixup_riscv_hi16 :").unwrap();
        assert_eq!(
            vega_cpplite::render_tokens(&head),
            "RISCV::fixup_riscv_hi16"
        );
        let head = parse_generated_head(StmtKind::If, "if ( IsPCRel ) {").unwrap();
        assert_eq!(vega_cpplite::render_tokens(&head), "IsPCRel");
        let head = parse_generated_head(StmtKind::Return, "return ELF :: R_X_NONE ;").unwrap();
        assert_eq!(vega_cpplite::render_tokens(&head), "ELF::R_X_NONE");
        // Malformed lines still produce best-effort heads.
        let head = parse_generated_head(StmtKind::Return, "ELF :: R_X_NONE").unwrap();
        assert_eq!(vega_cpplite::render_tokens(&head), "ELF::R_X_NONE");
    }

    #[test]
    fn candidate_similarity_prefers_matching_kind() {
        let train = vec![
            "fixup_arm_movt_hi16".to_string(),
            "fixup_MIPS_HI16".to_string(),
        ];
        let hi = name_similarity("fixup_riscv_hi16", &train);
        let lo = name_similarity("fixup_riscv_call", &train);
        assert!(hi > lo, "hi {hi} lo {lo}");
    }
}
