//! The `vfs.read` fault site must be invisible to callers: injected
//! transient read failures are retried, the returned content is always the
//! real one, and every injection shows up as a recovered fault on the obs
//! counters.

use vega_corpus::VirtualFs;
use vega_fault::{sites, FaultPlan};

fn counter(kind: &str) -> u64 {
    vega_obs::global().counter(&format!("fault.{kind}.{}", sites::VFS_READ))
}

#[test]
fn injected_read_faults_are_retried_and_counted() {
    let mut fs = VirtualFs::new();
    for i in 0..8 {
        fs.write(format!("lib/Target/T{i}/T{i}.td"), format!("def T{i};"));
    }

    // Half the reads hit an injected transient failure.
    vega_fault::set_plan(Some(
        FaultPlan::parse(&format!("seed=2;{}=0.5", sites::VFS_READ)).unwrap(),
    ));
    for round in 0..10 {
        for i in 0..8 {
            assert_eq!(
                fs.read(&format!("lib/Target/T{i}/T{i}.td")),
                Some(format!("def T{i};").as_str()),
                "round {round}: content must be the real one despite faults"
            );
        }
        assert_eq!(fs.read("lib/Target/missing.td"), None);
    }
    vega_fault::set_plan(None);
    let (inj, rec) = (counter("injected"), counter("recovered"));
    assert!(inj > 0, "a 0.5 rate over 90 reads should have fired");
    assert_eq!(inj, rec, "every injected vfs.read fault must be recovered");

    // Even a rate=1 plan terminates: the retry loop is bounded.
    vega_fault::set_plan(Some(
        FaultPlan::parse(&format!("{}=1.0", sites::VFS_READ)).unwrap(),
    ));
    assert_eq!(fs.read("lib/Target/T0/T0.td"), Some("def T0;"));
    vega_fault::set_plan(None);
    assert_eq!(counter("injected"), counter("recovered"));

    // With the plan cleared the site costs one atomic load and nothing fires.
    let before = counter("injected");
    for _ in 0..100 {
        fs.read("lib/Target/T1/T1.td");
    }
    assert_eq!(counter("injected"), before);
}
