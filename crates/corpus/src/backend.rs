//! Backend containers: the seven function modules of Fig. 1 and the set of
//! interface functions a target implements.

use std::collections::BTreeMap;
use std::fmt;
use vega_cpplite::Function;

/// The seven backend function modules of the paper's Fig. 1/Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Module {
    /// Instruction Selection.
    Sel,
    /// Register Allocation.
    Reg,
    /// Code Optimization.
    Opt,
    /// Instruction Scheduling.
    Sch,
    /// Code Emission.
    Emi,
    /// Assembly Parsing.
    Ass,
    /// Disassembler.
    Dis,
}

impl Module {
    /// All modules in the paper's presentation order.
    pub const ALL: [Module; 7] = [
        Module::Sel,
        Module::Reg,
        Module::Opt,
        Module::Sch,
        Module::Emi,
        Module::Ass,
        Module::Dis,
    ];

    /// The three-letter code used in the paper's figures.
    pub fn code(self) -> &'static str {
        match self {
            Module::Sel => "SEL",
            Module::Reg => "REG",
            Module::Opt => "OPT",
            Module::Sch => "SCH",
            Module::Emi => "EMI",
            Module::Ass => "ASS",
            Module::Dis => "DIS",
        }
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One target's backend: its interface function implementations, keyed by
/// interface name, plus the module each belongs to.
#[derive(Debug, Clone, Default)]
pub struct Backend {
    /// Target namespace, e.g. `RISCV`.
    pub target: String,
    functions: BTreeMap<String, (Module, Function)>,
}

impl Backend {
    /// Creates an empty backend for `target`.
    pub fn new(target: impl Into<String>) -> Self {
        Backend {
            target: target.into(),
            functions: BTreeMap::new(),
        }
    }

    /// Inserts an interface function implementation.
    pub fn insert(&mut self, module: Module, f: Function) {
        self.functions.insert(f.name.clone(), (module, f));
    }

    /// Looks up a function by interface name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name).map(|(_, f)| f)
    }

    /// Replaces an existing function's implementation (pass@1 substitution).
    /// Returns `false` if the interface is not part of this backend.
    pub fn replace(&mut self, name: &str, f: Function) -> bool {
        match self.functions.get_mut(name) {
            Some(slot) => {
                slot.1 = f;
                true
            }
            None => false,
        }
    }

    /// The module an interface function belongs to.
    pub fn module_of(&self, name: &str) -> Option<Module> {
        self.functions.get(name).map(|(m, _)| *m)
    }

    /// Iterates `(name, module, function)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Module, &Function)> {
        self.functions.iter().map(|(n, (m, f))| (n.as_str(), *m, f))
    }

    /// Number of interface functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` if the backend has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Total statement count across all functions.
    pub fn stmt_count(&self) -> usize {
        self.functions.values().map(|(_, f)| f.stmt_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_cpplite::parse_function;

    #[test]
    fn insert_lookup_replace() {
        let mut b = Backend::new("ARM");
        let f = parse_function("int getX() { return 1; }").unwrap();
        b.insert(Module::Emi, f);
        assert_eq!(b.module_of("getX"), Some(Module::Emi));
        let g = parse_function("int getX() { return 2; }").unwrap();
        assert!(b.replace("getX", g));
        assert_eq!(b.function("getX").unwrap().body[0].head_line(), "return 2;");
        assert!(!b.replace(
            "nosuch",
            parse_function("int nosuch() { return 0; }").unwrap()
        ));
    }

    #[test]
    fn module_codes_match_paper() {
        let codes: Vec<&str> = Module::ALL.iter().map(|m| m.code()).collect();
        assert_eq!(codes, ["SEL", "REG", "OPT", "SCH", "EMI", "ASS", "DIS"]);
    }
}
