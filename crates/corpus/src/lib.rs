//! `vega-corpus`: the miniature LLVM backend corpus.
//!
//! The paper trains on 101 GitHub LLVM backends and generates new backends
//! from target description files. This crate is that world in miniature:
//!
//! * [`llvm_provided`] — the LLVM-provided code (`LLVMDIRs`) with the base
//!   classes, enums and TableGen globals that feature selection harvests;
//! * [`ArchSpec`] / [`targets`] — ground-truth architecture specifications
//!   for 12 hand-modelled targets, procedural `SynNN` targets, and the three
//!   evaluation targets RISC-V, RI5CY and xCORE;
//! * [`describe_target`] — renders a spec's description files (`TGTDIRs`):
//!   `{NS}.td`, `{NS}InstrInfo.td`, `{NS}FixupKinds.h`, `ELFRelocs/{NS}.def`…;
//! * [`blueprints`] — renders each target's reference implementations of the
//!   ~38 interface-function groups across the seven backend modules, with
//!   deterministic style variants and idiosyncrasies;
//! * [`Corpus`] — ties it together and exposes the function-group view;
//! * [`ArchEnv`] — the interpreter environment that lets backend functions
//!   (reference or generated) execute during regression testing.
//!
//! # Examples
//! ```
//! use vega_corpus::{Corpus, CorpusConfig};
//! let corpus = Corpus::build(&CorpusConfig::tiny());
//! let riscv = corpus.target("RISCV").unwrap();
//! assert!(riscv.backend.function("getRelocType").is_some());
//! assert!(riscv.descriptions.read("lib/Target/RISCV/RISCVFixupKinds.h").is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arch;
mod backend;
pub mod blueprints;
mod corpus;
mod interp_env;
mod llvmdirs;
mod rng;
pub mod targets;
mod tdgen;
mod vfs;

pub use arch::{
    isd_value, vt_value, ArchSpec, ArchTraits, Endian, FixupDef, InstrDef, RegClass,
    FIRST_TARGET_FIXUP_KIND, GENERIC_FIXUPS, ISD_OPCODES, VALUE_TYPES,
};
pub use backend::{Backend, Module};
pub use corpus::{Corpus, CorpusConfig, TargetData, UnknownTarget, EVAL_TARGET_NAMES};
pub use interp_env::{ArchEnv, ObjData, INSTR_VALUE_BASE};
pub use llvmdirs::{llvm_provided, tgt_dirs, LLVM_DIRS};
pub use rng::Mix64;
pub use tdgen::describe_target;
pub use vfs::VirtualFs;
