//! Built-in and procedurally generated target architectures.
//!
//! The paper trains on ~100 GitHub backends and evaluates on RISC-V, RI5CY
//! and xCORE. We model a dozen well-known targets by hand (with their real
//! naming idiosyncrasies: `fixup_arm_*` vs `fixup_MIPS_*`, big vs little
//! endian, hardware loops on Hexagon, …), add procedurally generated
//! `SynNN` targets for training diversity, and hand-model the three
//! evaluation targets:
//!
//! * **RISCV** — general-purpose, compressed instructions, `pcrel_hi/lo`;
//! * **RI5CY** — RISC-V with ultra-low-power extensions (hardware loops,
//!   SIMD, MAC), mirroring the PULP core;
//! * **XCORE** — an IoT target with thread scheduling instructions, no
//!   disassembler, and deliberately unconventional naming (it is the weakest
//!   target in the paper, partly because it resembles nothing else).

use crate::arch::{ArchSpec, ArchTraits, Endian, FixupDef, InstrDef, RegClass};
use crate::rng::Mix64;

/// Casing convention for fixup/relocation names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixCase {
    /// `fixup_arm_movt_hi16`
    Lower,
    /// `fixup_MIPS_HI16`
    Upper,
}

/// A semantic fixup kind from which target-specific fixups are instantiated.
struct FixKind {
    tag: &'static str,
    bits: u32,
    offset: u32,
    pcrel: bool,
}

const FIX_KINDS: &[FixKind] = &[
    FixKind {
        tag: "hi16",
        bits: 16,
        offset: 16,
        pcrel: true,
    },
    FixKind {
        tag: "lo16",
        bits: 16,
        offset: 0,
        pcrel: true,
    },
    FixKind {
        tag: "16",
        bits: 16,
        offset: 0,
        pcrel: false,
    },
    FixKind {
        tag: "32",
        bits: 32,
        offset: 0,
        pcrel: true,
    },
    FixKind {
        tag: "branch",
        bits: 24,
        offset: 0,
        pcrel: true,
    },
    FixKind {
        tag: "call",
        bits: 26,
        offset: 0,
        pcrel: true,
    },
    FixKind {
        tag: "got",
        bits: 16,
        offset: 0,
        pcrel: false,
    },
    FixKind {
        tag: "jump",
        bits: 26,
        offset: 0,
        pcrel: false,
    },
    FixKind {
        tag: "abs8",
        bits: 8,
        offset: 0,
        pcrel: false,
    },
    FixKind {
        tag: "tprel",
        bits: 16,
        offset: 0,
        pcrel: false,
    },
];

fn make_fixup(ns: &str, case: FixCase, k: &FixKind) -> FixupDef {
    let upper_ns = ns.to_uppercase();
    let name = match case {
        FixCase::Lower => format!("fixup_{}_{}", ns.to_lowercase(), k.tag),
        FixCase::Upper => format!("fixup_{}_{}", upper_ns, k.tag.to_uppercase()),
    };
    FixupDef {
        name,
        reloc_abs: format!("R_{}_{}", upper_ns, k.tag.to_uppercase()),
        reloc_pcrel: k
            .pcrel
            .then(|| format!("R_{}_{}_PCREL", upper_ns, k.tag.to_uppercase())),
        bits: k.bits,
        offset: k.offset,
    }
}

/// The core integer ISA every target implements; (isd, base mnemonic,
/// base latency).
const CORE_ISA: &[(&str, &str, u32)] = &[
    ("ADD", "add", 1),
    ("SUB", "sub", 1),
    ("AND", "and", 1),
    ("OR", "or", 1),
    ("XOR", "xor", 1),
    ("SHL", "sll", 1),
    ("SRL", "srl", 1),
    ("LOAD", "ld", 2),
    ("STORE", "st", 1),
    ("BR", "b", 1),
    ("BRCOND", "bcc", 1),
    ("RET", "ret", 1),
    ("CALL", "call", 1),
];

/// Optional ISA parts keyed by trait; (isd, mnemonic, latency).
const MUL_ISA: &[(&str, &str, u32)] = &[("MUL", "mul", 3), ("SDIV", "div", 12)];
const FPU_ISA: &[(&str, &str, u32)] = &[("FADD", "fadd", 3), ("FMUL", "fmul", 4)];
const CMOV_ISA: &[(&str, &str, u32)] = &[("SELECT", "cmov", 1), ("SETCC", "setcc", 1)];

struct SpecParams<'a> {
    name: &'a str,
    endian: Endian,
    word_bits: u32,
    imm_bits: u32,
    traits: ArchTraits,
    fix_case: FixCase,
    fix_tags: &'a [&'a str],
    reg_prefix: &'a str,
    reg_count: u32,
    instr_style: InstrStyle,
    comment: &'a str,
    has_mul: bool,
    variant_kinds: &'a [&'a str],
    /// Jitters latencies/opcodes so targets disagree numerically.
    seed: u64,
}

/// How instruction names are derived from the base mnemonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstrStyle {
    /// `ADD`
    Plain,
    /// `ADDrr` (ARM-like register-register forms)
    SuffixRR,
    /// `ADDu` (MIPS-like unsigned forms)
    SuffixU,
    /// `ADD32rr` (X86-like width forms)
    Width32,
    /// `LSS_ADD` (xCORE-like: unusual, resembles nothing else)
    XPrefix,
}

fn instr_name(style: InstrStyle, mnemonic: &str) -> String {
    let up = mnemonic.to_uppercase();
    match style {
        InstrStyle::Plain => up,
        InstrStyle::SuffixRR => format!("{up}rr"),
        InstrStyle::SuffixU => format!("{up}u"),
        InstrStyle::Width32 => format!("{up}32rr"),
        InstrStyle::XPrefix => format!("LSS_{up}"),
    }
}

fn build_spec(p: SpecParams<'_>) -> ArchSpec {
    let mut rng = Mix64::keyed(p.seed, p.name);
    let mut instrs: Vec<InstrDef> = Vec::new();
    let mut opcode = 1 + (rng.below(16) as u32) * 4;
    let mut push = |set: &[(&str, &str, u32)], instrs: &mut Vec<InstrDef>, rng: &mut Mix64| {
        for (isd, mn, lat) in set {
            let lat = (*lat + rng.below(2) as u32).max(1);
            let mut i = InstrDef::alu(&instr_name(p.instr_style, mn), mn, isd, lat, opcode);
            i.is_branch = matches!(*isd, "BR" | "BRCOND" | "RET" | "CALL");
            i.is_load = *isd == "LOAD";
            i.is_store = *isd == "STORE";
            i.micro_ops = if *isd == "SDIV" { 2 } else { 1 };
            i.format = match *isd {
                "LOAD" | "STORE" => "M".to_string(),
                "BR" | "BRCOND" | "CALL" | "RET" => "B".to_string(),
                _ => "R".to_string(),
            };
            instrs.push(i);
            opcode += 1;
        }
    };
    push(CORE_ISA, &mut instrs, &mut rng);
    if p.has_mul {
        push(MUL_ISA, &mut instrs, &mut rng);
    }
    if p.traits.has_fpu {
        push(FPU_ISA, &mut instrs, &mut rng);
    }
    if p.traits.has_cmov {
        push(CMOV_ISA, &mut instrs, &mut rng);
    }
    // Immediate ALU form + NOP, common to all targets.
    instrs.push(InstrDef {
        name: instr_name(p.instr_style, "addi"),
        mnemonic: "addi".to_string(),
        isd: None,
        latency: 1,
        micro_ops: 1,
        format: "I".to_string(),
        opcode,
        is_branch: false,
        is_load: false,
        is_store: false,
        relaxed_to: None,
    });
    opcode += 1;
    instrs.push(InstrDef {
        name: instr_name(p.instr_style, "nop"),
        mnemonic: "nop".to_string(),
        isd: None,
        latency: 1,
        micro_ops: 1,
        format: "R".to_string(),
        opcode,
        is_branch: false,
        is_load: false,
        is_store: false,
        relaxed_to: None,
    });
    opcode += 1;
    // Trait-specific extensions.
    if p.traits.has_hwloop {
        for (n, mn) in [("LOOP0", "lp.start"), ("ENDLOOP0", "lp.end")] {
            instrs.push(InstrDef {
                name: n.to_string(),
                mnemonic: mn.to_string(),
                isd: None,
                latency: 1,
                micro_ops: 1,
                format: "B".to_string(),
                opcode,
                is_branch: true,
                is_load: false,
                is_store: false,
                relaxed_to: None,
            });
            opcode += 1;
        }
    }
    if p.traits.has_simd {
        for (n, mn, isd) in [("VADD", "vadd", "ADD"), ("VMUL", "vmul", "MUL")] {
            instrs.push(InstrDef {
                name: n.to_string(),
                mnemonic: mn.to_string(),
                isd: Some(format!("VEC_{isd}")),
                latency: 2,
                micro_ops: 1,
                format: "R".to_string(),
                opcode,
                is_branch: false,
                is_load: false,
                is_store: false,
                relaxed_to: None,
            });
            opcode += 1;
        }
    }
    if p.traits.has_mac {
        instrs.push(InstrDef {
            name: "MAC".to_string(),
            mnemonic: "p.mac".to_string(),
            isd: None,
            latency: 2,
            micro_ops: 1,
            format: "R".to_string(),
            opcode,
            is_branch: false,
            is_load: false,
            is_store: false,
            relaxed_to: None,
        });
        opcode += 1;
    }
    if p.traits.has_compressed {
        let wide = instrs[0].name.clone(); // the ADD form
        instrs.push(InstrDef {
            name: "C_ADD".to_string(),
            mnemonic: "c.add".to_string(),
            isd: None,
            latency: 1,
            micro_ops: 1,
            format: "C".to_string(),
            opcode,
            is_branch: false,
            is_load: false,
            is_store: false,
            relaxed_to: Some(wide),
        });
        opcode += 1;
    }
    if p.traits.has_threads {
        for (n, mn) in [("TSTART", "tstart"), ("TSYNC", "tsync"), ("TJOIN", "tjoin")] {
            instrs.push(InstrDef {
                name: n.to_string(),
                mnemonic: mn.to_string(),
                isd: None,
                latency: 4,
                micro_ops: 2,
                format: "B".to_string(),
                opcode,
                is_branch: true,
                is_load: false,
                is_store: false,
                relaxed_to: None,
            });
            opcode += 1;
        }
    }

    let mut regs = vec![RegClass {
        name: "GPR".to_string(),
        prefix: p.reg_prefix.to_string(),
        count: p.reg_count,
        spill_size: p.word_bits / 8,
        vt: if p.word_bits == 64 {
            "i64".to_string()
        } else {
            "i32".to_string()
        },
    }];
    if p.traits.has_fpu {
        regs.push(RegClass {
            name: "FPR".to_string(),
            prefix: "F".to_string(),
            count: p.reg_count.min(32),
            spill_size: 8,
            vt: "f64".to_string(),
        });
    }
    if p.traits.has_simd {
        regs.push(RegClass {
            name: "VR".to_string(),
            prefix: "V".to_string(),
            count: 16,
            spill_size: 16,
            vt: "v128".to_string(),
        });
    }

    let fixups: Vec<FixupDef> = p
        .fix_tags
        .iter()
        .map(|tag| {
            let k = FIX_KINDS
                .iter()
                .find(|k| k.tag == *tag)
                .unwrap_or_else(|| panic!("unknown fixup tag {tag}"));
            make_fixup(p.name, p.fix_case, k)
        })
        .collect();

    let sp = format!("{}{}", p.reg_prefix, p.reg_count - 1);
    let fp = format!("{}{}", p.reg_prefix, p.reg_count - 2);
    let ra = format!("{}{}", p.reg_prefix, p.reg_count - 3);
    ArchSpec {
        name: p.name.to_string(),
        endian: p.endian,
        word_bits: p.word_bits,
        imm_bits: p.imm_bits,
        traits: p.traits,
        instrs,
        regs,
        fixups,
        variant_kinds: p
            .variant_kinds
            .iter()
            .map(|v| format!("VK_{}_{}", p.name.to_uppercase(), v))
            .collect(),
        sp_reg: sp,
        fp_reg: fp,
        ra_reg: ra,
        comment: p.comment.to_string(),
    }
}

/// The three evaluation targets of the paper, in order: RISC-V, RI5CY, xCORE.
pub fn eval_targets() -> Vec<ArchSpec> {
    vec![riscv(), ri5cy(), xcore()]
}

fn riscv() -> ArchSpec {
    build_spec(SpecParams {
        name: "RISCV",
        endian: Endian::Little,
        word_bits: 32,
        imm_bits: 12,
        traits: ArchTraits {
            has_pcrel: true,
            has_variant_kind: true,
            has_fpu: true,
            has_mac: false,
            has_hwloop: false,
            has_simd: false,
            has_compressed: true,
            has_threads: false,
            has_disassembler: true,
            has_cmov: false,
            has_forwarding: true,
        },
        fix_case: FixCase::Lower,
        fix_tags: &["hi16", "lo16", "branch", "call", "32", "got"],
        reg_prefix: "X",
        reg_count: 32,
        instr_style: InstrStyle::Plain,
        comment: "#",
        has_mul: true,
        variant_kinds: &["LO", "HI", "PCREL_LO", "PCREL_HI"],
        seed: 1001,
    })
}

fn ri5cy() -> ArchSpec {
    let mut s = build_spec(SpecParams {
        name: "RI5CY",
        endian: Endian::Little,
        word_bits: 32,
        imm_bits: 12,
        traits: ArchTraits {
            has_pcrel: true,
            has_variant_kind: true,
            has_fpu: false,
            has_mac: true,
            has_hwloop: true,
            has_simd: true,
            has_compressed: true,
            has_threads: false,
            has_disassembler: true,
            has_cmov: false,
            has_forwarding: true,
        },
        fix_case: FixCase::Lower,
        fix_tags: &["hi16", "lo16", "branch", "call", "32"],
        reg_prefix: "X",
        reg_count: 32,
        instr_style: InstrStyle::Plain,
        comment: "#",
        has_mul: true,
        variant_kinds: &["LO", "HI"],
        seed: 1002,
    });
    // RI5CY shares the RISC-V base latencies (it *is* a RISC-V core).
    let rv = riscv();
    for i in &mut s.instrs {
        if let Some(base) = rv.instrs.iter().find(|b| b.mnemonic == i.mnemonic) {
            i.latency = base.latency;
        }
    }
    s
}

fn xcore() -> ArchSpec {
    build_spec(SpecParams {
        name: "XCore",
        endian: Endian::Little,
        word_bits: 32,
        imm_bits: 16,
        traits: ArchTraits {
            has_pcrel: true,
            has_variant_kind: false,
            has_fpu: false,
            has_mac: false,
            has_hwloop: false,
            has_simd: false,
            has_compressed: false,
            has_threads: true,
            // The paper's LLVM 3.0 xCORE has no disassembler module.
            has_disassembler: false,
            has_cmov: false,
            has_forwarding: false,
        },
        fix_case: FixCase::Lower,
        // Unusual set: thread-local + small absolutes, little overlap with
        // the mainstream targets.
        fix_tags: &["tprel", "abs8", "32", "jump"],
        reg_prefix: "R",
        reg_count: 12,
        instr_style: InstrStyle::XPrefix,
        comment: "//",
        has_mul: true,
        variant_kinds: &[],
        seed: 1003,
    })
}

/// The hand-modelled training targets (the "existing backends" pool).
///
/// `seed` jitters latencies/opcodes; the default corpus uses seed 0.
pub fn builtin_targets(seed: u64) -> Vec<ArchSpec> {
    let t = |has: fn(&mut ArchTraits)| {
        let mut tr = ArchTraits {
            has_pcrel: true,
            has_disassembler: true,
            ..ArchTraits::default()
        };
        has(&mut tr);
        tr
    };
    vec![
        build_spec(SpecParams {
            name: "ARM",
            endian: Endian::Little,
            word_bits: 32,
            imm_bits: 12,
            traits: t(|tr| {
                tr.has_variant_kind = true;
                tr.has_fpu = true;
                tr.has_cmov = true;
                tr.has_forwarding = true;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["hi16", "lo16", "branch", "call", "32", "got"],
            reg_prefix: "R",
            reg_count: 16,
            instr_style: InstrStyle::SuffixRR,
            comment: "@",
            has_mul: true,
            variant_kinds: &["GOT", "TLSGD", "LO", "HI"],
            seed: seed ^ 1,
        }),
        build_spec(SpecParams {
            name: "Mips",
            endian: Endian::Big,
            word_bits: 32,
            imm_bits: 16,
            traits: t(|tr| {
                tr.has_variant_kind = true;
                tr.has_fpu = true;
                tr.has_forwarding = true;
            }),
            fix_case: FixCase::Upper,
            fix_tags: &["hi16", "lo16", "branch", "call", "32", "got", "jump"],
            reg_prefix: "R",
            reg_count: 32,
            instr_style: InstrStyle::SuffixU,
            comment: "#",
            has_mul: true,
            variant_kinds: &["GOT", "LO", "HI", "GPREL"],
            seed: seed ^ 2,
        }),
        build_spec(SpecParams {
            name: "X86",
            endian: Endian::Little,
            word_bits: 64,
            imm_bits: 32,
            traits: t(|tr| {
                tr.has_fpu = true;
                tr.has_cmov = true;
                tr.has_simd = true;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["32", "16", "got", "tprel"],
            reg_prefix: "R",
            reg_count: 16,
            instr_style: InstrStyle::Width32,
            comment: "#",
            has_mul: true,
            variant_kinds: &["GOT", "PLT", "TPOFF"],
            seed: seed ^ 3,
        }),
        build_spec(SpecParams {
            name: "PPC",
            endian: Endian::Big,
            word_bits: 64,
            imm_bits: 16,
            traits: t(|tr| {
                tr.has_variant_kind = true;
                tr.has_fpu = true;
                tr.has_cmov = true;
                tr.has_forwarding = true;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["hi16", "lo16", "branch", "call", "32", "tprel"],
            reg_prefix: "R",
            reg_count: 32,
            instr_style: InstrStyle::Plain,
            comment: "#",
            has_mul: true,
            variant_kinds: &["LO", "HA", "TOC"],
            seed: seed ^ 4,
        }),
        build_spec(SpecParams {
            name: "AMDGPU",
            endian: Endian::Little,
            word_bits: 64,
            imm_bits: 16,
            traits: t(|tr| {
                tr.has_fpu = true;
                tr.has_simd = true;
                tr.has_cmov = true;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["32", "got", "call"],
            reg_prefix: "VGPR",
            reg_count: 32,
            instr_style: InstrStyle::Plain,
            comment: ";",
            has_mul: true,
            variant_kinds: &["GOTPCREL"],
            seed: seed ^ 5,
        }),
        build_spec(SpecParams {
            name: "Hexagon",
            endian: Endian::Little,
            word_bits: 32,
            imm_bits: 16,
            traits: t(|tr| {
                tr.has_hwloop = true;
                tr.has_simd = true;
                tr.has_mac = true;
                tr.has_forwarding = true;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["hi16", "lo16", "branch", "call", "32", "got"],
            reg_prefix: "R",
            reg_count: 32,
            instr_style: InstrStyle::Plain,
            comment: "//",
            has_mul: true,
            variant_kinds: &[],
            seed: seed ^ 6,
        }),
        build_spec(SpecParams {
            name: "Sparc",
            endian: Endian::Big,
            word_bits: 32,
            imm_bits: 13,
            traits: t(|tr| {
                tr.has_variant_kind = true;
                tr.has_fpu = true;
            }),
            fix_case: FixCase::Upper,
            fix_tags: &["hi16", "lo16", "branch", "call", "32"],
            reg_prefix: "G",
            reg_count: 32,
            instr_style: InstrStyle::Plain,
            comment: "!",
            has_mul: true,
            variant_kinds: &["LO", "HI", "TLS_GD"],
            seed: seed ^ 7,
        }),
        build_spec(SpecParams {
            name: "AVR",
            endian: Endian::Little,
            word_bits: 16,
            imm_bits: 8,
            traits: t(|tr| {
                tr.has_pcrel = false;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["lo16", "hi16", "abs8", "call"],
            reg_prefix: "R",
            reg_count: 32,
            instr_style: InstrStyle::Plain,
            comment: ";",
            has_mul: false,
            variant_kinds: &[],
            seed: seed ^ 8,
        }),
        build_spec(SpecParams {
            name: "MSP430",
            endian: Endian::Little,
            word_bits: 16,
            imm_bits: 16,
            traits: t(|tr| {
                tr.has_pcrel = false;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["16", "32", "abs8"],
            reg_prefix: "R",
            reg_count: 16,
            instr_style: InstrStyle::Plain,
            comment: ";",
            has_mul: false,
            variant_kinds: &[],
            seed: seed ^ 9,
        }),
        build_spec(SpecParams {
            name: "Lanai",
            endian: Endian::Big,
            word_bits: 32,
            imm_bits: 16,
            traits: t(|tr| {
                tr.has_forwarding = true;
            }),
            fix_case: FixCase::Upper,
            fix_tags: &["hi16", "lo16", "branch", "32"],
            reg_prefix: "R",
            reg_count: 32,
            instr_style: InstrStyle::Plain,
            comment: "!",
            has_mul: true,
            variant_kinds: &[],
            seed: seed ^ 10,
        }),
        build_spec(SpecParams {
            name: "SystemZ",
            endian: Endian::Big,
            word_bits: 64,
            imm_bits: 20,
            traits: t(|tr| {
                tr.has_fpu = true;
                tr.has_cmov = true;
                tr.has_variant_kind = true;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["hi16", "lo16", "32", "got", "tprel"],
            reg_prefix: "R",
            reg_count: 16,
            instr_style: InstrStyle::Plain,
            comment: "#",
            has_mul: true,
            variant_kinds: &["GOT", "PLT"],
            seed: seed ^ 11,
        }),
        build_spec(SpecParams {
            name: "VE",
            endian: Endian::Little,
            word_bits: 64,
            imm_bits: 32,
            traits: t(|tr| {
                tr.has_fpu = true;
                tr.has_simd = true;
                tr.has_variant_kind = true;
            }),
            fix_case: FixCase::Lower,
            fix_tags: &["hi16", "lo16", "call", "32", "got"],
            reg_prefix: "SX",
            reg_count: 64,
            instr_style: InstrStyle::Plain,
            comment: "#",
            has_mul: true,
            variant_kinds: &["LO32", "HI32"],
            seed: seed ^ 12,
        }),
    ]
}

/// Generates one procedural training target `Syn<idx>`.
pub fn synthetic_target(seed: u64, idx: usize) -> ArchSpec {
    let name = format!("Syn{idx:02}");
    let mut rng = Mix64::keyed(seed, &name);
    let endian = if rng.chance(0.4) {
        Endian::Big
    } else {
        Endian::Little
    };
    let word_bits = *rng.pick(&[16u32, 32, 32, 32, 64]);
    let mut traits = ArchTraits {
        has_pcrel: rng.chance(0.8),
        has_variant_kind: rng.chance(0.5),
        has_fpu: rng.chance(0.6),
        has_mac: rng.chance(0.3),
        has_hwloop: rng.chance(0.2),
        has_simd: rng.chance(0.35),
        has_compressed: rng.chance(0.25),
        has_threads: rng.chance(0.08),
        has_disassembler: rng.chance(0.9),
        has_cmov: rng.chance(0.5),
        has_forwarding: rng.chance(0.5),
    };
    if word_bits == 16 {
        traits.has_fpu = false;
        traits.has_simd = false;
    }
    let all_tags: Vec<&str> = FIX_KINDS.iter().map(|k| k.tag).collect();
    let n_tags = rng.range(3, 7) as usize;
    let tag_sel = rng.choose_indices(all_tags.len(), n_tags);
    let tags: Vec<&str> = tag_sel.into_iter().map(|i| all_tags[i]).collect();
    let styles = [
        InstrStyle::Plain,
        InstrStyle::SuffixRR,
        InstrStyle::SuffixU,
        InstrStyle::Width32,
    ];
    let vk_pool = ["GOT", "PLT", "LO", "HI", "TLSGD", "GPREL"];
    let n_vk = if traits.has_variant_kind {
        rng.range(2, 4) as usize
    } else {
        0
    };
    let vk_sel = rng.choose_indices(vk_pool.len(), n_vk);
    let vks: Vec<&str> = vk_sel.into_iter().map(|i| vk_pool[i]).collect();
    build_spec(SpecParams {
        name: &name,
        endian,
        word_bits,
        imm_bits: *rng.pick(&[8u32, 12, 13, 16, 16, 20]),
        traits,
        fix_case: if rng.chance(0.3) {
            FixCase::Upper
        } else {
            FixCase::Lower
        },
        fix_tags: &tags,
        reg_prefix: *rng.pick(&["R", "X", "G", "W", "A"]),
        reg_count: *rng.pick(&[8u32, 16, 16, 32, 32]),
        instr_style: *rng.pick(&styles),
        comment: *rng.pick(&["#", ";", "//", "!"]),
        has_mul: rng.chance(0.8),
        variant_kinds: &vks,
        seed: seed ^ (idx as u64).wrapping_mul(0x9E37),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_are_unique() {
        let ts = builtin_targets(0);
        let mut names: Vec<_> = ts.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ts.len());
        assert_eq!(ts.len(), 12);
    }

    #[test]
    fn eval_targets_match_paper_traits() {
        let [rv, ri, xc]: [ArchSpec; 3] = eval_targets().try_into().unwrap();
        assert!(rv.traits.has_compressed && rv.traits.has_disassembler);
        assert!(ri.traits.has_hwloop && ri.traits.has_simd && ri.traits.has_mac);
        assert!(xc.traits.has_threads && !xc.traits.has_disassembler);
        // RI5CY shares RISC-V base latencies for common mnemonics.
        let add_rv = rv.instrs.iter().find(|i| i.mnemonic == "add").unwrap();
        let add_ri = ri.instrs.iter().find(|i| i.mnemonic == "add").unwrap();
        assert_eq!(add_rv.latency, add_ri.latency);
    }

    #[test]
    fn synthetic_targets_are_deterministic_and_distinct() {
        let a = synthetic_target(7, 3);
        let b = synthetic_target(7, 3);
        assert_eq!(a, b);
        let c = synthetic_target(7, 4);
        assert_ne!(a.name, c.name);
    }

    #[test]
    fn fixup_naming_follows_case_style() {
        let ts = builtin_targets(0);
        let mips = ts.iter().find(|t| t.name == "Mips").unwrap();
        assert!(mips
            .fixups
            .iter()
            .all(|f| f.name.starts_with("fixup_MIPS_")));
        let arm = ts.iter().find(|t| t.name == "ARM").unwrap();
        assert!(arm.fixups.iter().all(|f| f.name.starts_with("fixup_arm_")));
    }

    #[test]
    fn every_builtin_covers_core_isa() {
        for t in builtin_targets(0) {
            for isd in ["ADD", "SUB", "LOAD", "STORE", "BR", "RET"] {
                assert!(t.instr_for_isd(isd).is_some(), "{} missing {isd}", t.name);
            }
        }
    }
}
