//! Blueprint-driven synthesis of reference backend implementations.
//!
//! A *blueprint* renders one target's implementation of one interface
//! function from its [`ArchSpec`]. Across targets, a blueprint produces
//! structurally similar code with target-specific values — exactly the
//! function-group regularity VEGA exploits. Blueprints also inject two kinds
//! of controlled variation:
//!
//! * **style variants** — semantically equivalent alternatives (helper
//!   routing, statement grouping, range-check shapes) that diversify the
//!   corpus text, exactly like independent human authors would;
//! * **idiosyncrasies** — genuine semantic deviations (a target that expands
//!   `MUL` despite having a multiplier, unusual cost thresholds) that no
//!   model could infer from description files. These produce the irreducible
//!   error floor that keeps pass@1 below 100%, mirroring the paper's Err-V /
//!   Err-Def sources.
//!
//! Both are keyed deterministically on `(corpus seed, target, group)`.

mod ass;
mod dis;
mod emi;
mod opt;
mod reg;
mod sch;
mod sel;
mod util;

use crate::arch::ArchSpec;
use crate::backend::Module;
use crate::rng::Mix64;

/// The output of rendering one blueprint for one target: the interface
/// function plus any same-target static helpers it calls (inlined during
/// preprocessing, per §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rendered {
    /// Source text of the interface function.
    pub main: String,
    /// Source text of helper functions referenced by `main`.
    pub helpers: Vec<String>,
}

impl Rendered {
    /// A rendering with no helpers.
    pub fn main_only(main: String) -> Self {
        Rendered {
            main,
            helpers: Vec::new(),
        }
    }
}

/// One interface-function blueprint.
#[derive(Debug, Clone, Copy)]
pub struct Blueprint {
    /// Interface function name (the function-group key).
    pub name: &'static str,
    /// The backend module this function belongs to (Fig. 1).
    pub module: Module,
    /// Renders the target-specific implementation; `None` when the target
    /// does not implement this interface (e.g. DIS functions on xCORE).
    pub render: fn(&ArchSpec, &mut Mix64) -> Option<Rendered>,
}

/// The full blueprint registry: every interface function group in the
/// miniature backend, ordered by module then name.
pub fn all_blueprints() -> Vec<Blueprint> {
    let mut v = vec![
        // SEL — Instruction Selection
        Blueprint {
            name: "selectOpcode",
            module: Module::Sel,
            render: sel::select_opcode,
        },
        Blueprint {
            name: "getOperationAction",
            module: Module::Sel,
            render: sel::get_operation_action,
        },
        Blueprint {
            name: "isLegalImmediate",
            module: Module::Sel,
            render: sel::is_legal_immediate,
        },
        Blueprint {
            name: "getAddrMode",
            module: Module::Sel,
            render: sel::get_addr_mode,
        },
        Blueprint {
            name: "getSelectOpcode",
            module: Module::Sel,
            render: sel::get_select_opcode,
        },
        Blueprint {
            name: "isTruncateFree",
            module: Module::Sel,
            render: sel::is_truncate_free,
        },
        Blueprint {
            name: "getImmCost",
            module: Module::Sel,
            render: sel::get_imm_cost,
        },
        // REG — Register Allocation
        Blueprint {
            name: "getRegClassFor",
            module: Module::Reg,
            render: reg::get_reg_class_for,
        },
        Blueprint {
            name: "getSpillSize",
            module: Module::Reg,
            render: reg::get_spill_size,
        },
        Blueprint {
            name: "getFrameRegister",
            module: Module::Reg,
            render: reg::get_frame_register,
        },
        Blueprint {
            name: "getReservedRegs",
            module: Module::Reg,
            render: reg::get_reserved_regs,
        },
        Blueprint {
            name: "isCalleeSavedReg",
            module: Module::Reg,
            render: reg::is_callee_saved_reg,
        },
        Blueprint {
            name: "getPointerRegClass",
            module: Module::Reg,
            render: reg::get_pointer_reg_class,
        },
        // OPT — Code Optimization
        Blueprint {
            name: "foldImmediate",
            module: Module::Opt,
            render: opt::fold_immediate,
        },
        Blueprint {
            name: "combineMulAdd",
            module: Module::Opt,
            render: opt::combine_mul_add,
        },
        Blueprint {
            name: "isHardwareLoopProfitable",
            module: Module::Opt,
            render: opt::is_hardware_loop_profitable,
        },
        Blueprint {
            name: "isProfitableToHoist",
            module: Module::Opt,
            render: opt::is_profitable_to_hoist,
        },
        Blueprint {
            name: "isProfitableToDupForIfCvt",
            module: Module::Opt,
            render: opt::is_profitable_to_dup,
        },
        // SCH — Instruction Scheduling
        Blueprint {
            name: "getInstrLatency",
            module: Module::Sch,
            render: sch::get_instr_latency,
        },
        Blueprint {
            name: "getNumMicroOps",
            module: Module::Sch,
            render: sch::get_num_micro_ops,
        },
        Blueprint {
            name: "isSchedulingBoundary",
            module: Module::Sch,
            render: sch::is_scheduling_boundary,
        },
        Blueprint {
            name: "getOperandLatency",
            module: Module::Sch,
            render: sch::get_operand_latency,
        },
        Blueprint {
            name: "getIssueWidth",
            module: Module::Sch,
            render: sch::get_issue_width,
        },
        // EMI — Code Emission
        Blueprint {
            name: "getRelocType",
            module: Module::Emi,
            render: emi::get_reloc_type,
        },
        Blueprint {
            name: "applyFixup",
            module: Module::Emi,
            render: emi::apply_fixup,
        },
        Blueprint {
            name: "getFixupKindInfo",
            module: Module::Emi,
            render: emi::get_fixup_kind_info,
        },
        Blueprint {
            name: "encodeInstruction",
            module: Module::Emi,
            render: emi::encode_instruction,
        },
        Blueprint {
            name: "getRelaxedOpcode",
            module: Module::Emi,
            render: emi::get_relaxed_opcode,
        },
        Blueprint {
            name: "mayNeedRelaxation",
            module: Module::Emi,
            render: emi::may_need_relaxation,
        },
        Blueprint {
            name: "getInstSizeInBytes",
            module: Module::Emi,
            render: emi::get_inst_size_in_bytes,
        },
        // ASS — Assembly Parsing
        Blueprint {
            name: "parseRegister",
            module: Module::Ass,
            render: ass::parse_register,
        },
        Blueprint {
            name: "matchMnemonic",
            module: Module::Ass,
            render: ass::match_mnemonic,
        },
        Blueprint {
            name: "isValidAsmImmediate",
            module: Module::Ass,
            render: ass::is_valid_asm_immediate,
        },
        Blueprint {
            name: "getCommentString",
            module: Module::Ass,
            render: ass::get_comment_string,
        },
        Blueprint {
            name: "getRegisterPrefix",
            module: Module::Ass,
            render: ass::get_register_prefix,
        },
        // DIS — Disassembler
        Blueprint {
            name: "decodeInstruction",
            module: Module::Dis,
            render: dis::decode_instruction,
        },
        Blueprint {
            name: "decodeGPRRegisterClass",
            module: Module::Dis,
            render: dis::decode_gpr_register_class,
        },
        Blueprint {
            name: "getDecodeSize",
            module: Module::Dis,
            render: dis::get_decode_size,
        },
    ];
    v.sort_by_key(|b| (b.module, b.name));
    v
}

/// The qualifier class name used for a module's functions on target `ns`
/// (e.g. `ARMELFObjectWriter` for EMI), mirroring LLVM's class layout.
pub fn module_qualifier(ns: &str, module: Module) -> String {
    let suffix = match module {
        Module::Sel => "TargetLowering",
        Module::Reg => "RegisterInfo",
        Module::Opt => "InstrInfo",
        Module::Sch => "Subtarget",
        Module::Emi => "ELFObjectWriter",
        Module::Ass => "AsmParser",
        Module::Dis => "Disassembler",
    };
    format!("{ns}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::{builtin_targets, eval_targets};
    use vega_cpplite::parse_function;

    /// Every blueprint must render parseable code for every target that has
    /// it — this is the master smoke test for the whole corpus language.
    #[test]
    fn all_blueprints_parse_for_all_targets() {
        let mut targets = builtin_targets(0);
        targets.extend(eval_targets());
        for spec in &targets {
            for bp in all_blueprints() {
                let mut rng = Mix64::keyed(0, &format!("{}/{}", spec.name, bp.name));
                if let Some(r) = (bp.render)(spec, &mut rng) {
                    let f = parse_function(&r.main).unwrap_or_else(|e| {
                        panic!("{} for {}: {e}\n{}", bp.name, spec.name, r.main)
                    });
                    assert_eq!(f.name, bp.name, "main function name mismatch");
                    for h in &r.helpers {
                        parse_function(h).unwrap_or_else(|e| {
                            panic!("helper of {} for {}: {e}\n{h}", bp.name, spec.name)
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let spec = &eval_targets()[0];
        for bp in all_blueprints() {
            let mut r1 = Mix64::keyed(3, &format!("{}/{}", spec.name, bp.name));
            let mut r2 = Mix64::keyed(3, &format!("{}/{}", spec.name, bp.name));
            assert_eq!((bp.render)(spec, &mut r1), (bp.render)(spec, &mut r2));
        }
    }

    #[test]
    fn dis_absent_for_xcore() {
        let xc = &eval_targets()[2];
        for bp in all_blueprints().iter().filter(|b| b.module == Module::Dis) {
            let mut rng = Mix64::keyed(0, "x");
            assert!(
                (bp.render)(xc, &mut rng).is_none(),
                "{} present on xCORE",
                bp.name
            );
        }
    }

    #[test]
    fn registry_names_unique() {
        let bps = all_blueprints();
        let mut names: Vec<_> = bps.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), bps.len());
        assert!(bps.len() >= 30);
    }
}
