//! REG blueprints — register allocation support.
//!
//! REG is the paper's most accurate module (small functions whose values come
//! straight from the register description files).

use super::{module_qualifier, Rendered};
use crate::arch::ArchSpec;
use crate::backend::Module;
use crate::rng::Mix64;
use std::fmt::Write as _;

/// `getRegClassFor`: register class id for a value type.
pub fn get_reg_class_for(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Reg);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getRegClassFor(unsigned VT) {{");
    let _ = writeln!(b, "  switch (VT) {{");
    let _ = writeln!(b, "  case MVT::i32:");
    let _ = writeln!(b, "    return 0;");
    if spec.word_bits == 64 {
        let _ = writeln!(b, "  case MVT::i64:");
        let _ = writeln!(b, "    return 0;");
    }
    if let Some(fpr) = spec.regs.iter().position(|r| r.name == "FPR") {
        let _ = writeln!(b, "  case MVT::f32:");
        let _ = writeln!(b, "    return {fpr};");
        let _ = writeln!(b, "  case MVT::f64:");
        let _ = writeln!(b, "    return {fpr};");
    }
    if let Some(vr) = spec.regs.iter().position(|r| r.name == "VR") {
        let _ = writeln!(b, "  case MVT::v128:");
        let _ = writeln!(b, "    return {vr};");
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getSpillSize`: spill slot size in bytes per register class id.
pub fn get_spill_size(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Reg);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getSpillSize(unsigned RC) {{");
    let _ = writeln!(b, "  switch (RC) {{");
    for (i, rc) in spec.regs.iter().enumerate() {
        let _ = writeln!(b, "  case {i}:");
        let _ = writeln!(b, "    return {};", rc.spill_size);
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return {};", spec.word_bits / 8);
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getFrameRegister`: FP when the function has a frame, SP otherwise.
pub fn get_frame_register(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Reg);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "unsigned {qual}::getFrameRegister(const MachineFunction &MF) {{"
    );
    let _ = writeln!(b, "  if (MF.hasFP()) {{");
    let _ = writeln!(b, "    return {ns}::{};", spec.fp_reg);
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return {ns}::{};", spec.sp_reg);
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getReservedRegs`: bitmask of registers the allocator must not touch.
pub fn get_reserved_regs(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Reg);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getReservedRegs() {{");
    let _ = writeln!(b, "  unsigned Reserved = 0;");
    let _ = writeln!(b, "  Reserved = Reserved | (1 << {ns}::{});", spec.sp_reg);
    let _ = writeln!(b, "  Reserved = Reserved | (1 << {ns}::{});", spec.fp_reg);
    // 16-bit microcontrollers push the return address to the stack; wider
    // targets keep it in a reserved link register (visible via WordBits).
    if spec.word_bits > 16 {
        let _ = writeln!(b, "  Reserved = Reserved | (1 << {ns}::{});", spec.ra_reg);
    }
    let _ = writeln!(b, "  return Reserved;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isCalleeSavedReg`: the callee-saved register window.
pub fn is_callee_saved_reg(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Reg);
    let count = spec.regs[0].count as i64;
    // ABI choice: roughly the upper half minus the special registers, with a
    // per-target idiosyncratic lower bound (the ABI is not in the .td files).
    let lo = count / 2 + if rng.chance(0.3) { 1 } else { 0 };
    let hi = count - 4;
    let mut b = String::new();
    let _ = writeln!(b, "bool {qual}::isCalleeSavedReg(unsigned Reg) {{");
    let _ = writeln!(b, "  if (Reg >= {lo} && Reg <= {hi}) {{");
    let _ = writeln!(b, "    return true;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return false;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getPointerRegClass`: pointers live in the GPR class for every target.
pub fn get_pointer_reg_class(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Reg);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getPointerRegClass() {{");
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}
