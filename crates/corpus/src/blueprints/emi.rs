//! EMI blueprints — code emission.
//!
//! Contains the paper's motivating example, `getRelocType`, including the
//! optional `GetRelocTypeInner` helper routing (Fig. 2a) and the optional
//! `VariantKind` statement that is present on some targets and absent on
//! others (the paper's `S2`).

use super::util::{mask, reg_shifts};
use super::{module_qualifier, Rendered};
use crate::arch::{ArchSpec, FixupDef};
use crate::backend::Module;
use crate::rng::Mix64;
use std::fmt::Write as _;

fn none_reloc(spec: &ArchSpec) -> String {
    format!("R_{}_NONE", spec.name.to_uppercase())
}

fn fixup_tag_is(f: &FixupDef, tag: &str) -> bool {
    f.name.to_lowercase().ends_with(&tag.to_lowercase())
}

/// `getRelocType`: fixup kind (+ PC-relativity, + symbol modifier) → ELF
/// relocation type. The motivating example of the paper.
pub fn get_reloc_type(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Emi);
    let none = none_reloc(spec);
    let mut body = String::new();
    let _ = writeln!(body, "  unsigned Kind = Fixup.getTargetKind();");
    let has_vk = spec.traits.has_variant_kind && !spec.variant_kinds.is_empty();
    if has_vk {
        let _ = writeln!(body, "  unsigned Modifier = Target.getAccessVariant();");
        if let (Some(vk_got), Some(got_fix)) = (
            spec.variant_kinds.iter().find(|v| v.ends_with("_GOT")),
            spec.fixups.iter().find(|f| fixup_tag_is(f, "got")),
        ) {
            let _ = writeln!(body, "  if (Modifier == {ns}::{vk_got}) {{");
            let _ = writeln!(body, "    return ELF::{};", got_fix.reloc_abs);
            let _ = writeln!(body, "  }}");
        }
    }
    // PC-relative branch.
    if spec.traits.has_pcrel {
        let _ = writeln!(body, "  if (IsPCRel) {{");
        let _ = writeln!(body, "    switch (Kind) {{");
        if let Some(f32_pcrel) = spec
            .fixups
            .iter()
            .find(|f| fixup_tag_is(f, "32"))
            .and_then(|f| f.reloc_pcrel.clone())
        {
            let _ = writeln!(body, "    case FK_Data_4:");
            let _ = writeln!(body, "      return ELF::{f32_pcrel};");
        }
        for f in &spec.fixups {
            if let Some(pcrel) = &f.reloc_pcrel {
                let _ = writeln!(body, "    case {ns}::{}:", f.name);
                let _ = writeln!(body, "      return ELF::{pcrel};");
            }
        }
        let _ = writeln!(body, "    default:");
        let _ = writeln!(body, "      return ELF::{none};");
        let _ = writeln!(body, "    }}");
        let _ = writeln!(body, "  }}");
    } else {
        let _ = writeln!(body, "  if (IsPCRel) {{");
        let _ = writeln!(body, "    return ELF::{none};");
        let _ = writeln!(body, "  }}");
    }
    // Absolute branch.
    let _ = writeln!(body, "  switch (Kind) {{");
    if let Some(f32abs) = spec.fixups.iter().find(|f| fixup_tag_is(f, "32")) {
        let _ = writeln!(body, "  case FK_Data_4:");
        let _ = writeln!(body, "    return ELF::{};", f32abs.reloc_abs);
    }
    for f in &spec.fixups {
        let _ = writeln!(body, "  case {ns}::{}:", f.name);
        let _ = writeln!(body, "    return ELF::{};", f.reloc_abs);
    }
    let _ = writeln!(body, "  default:");
    let _ = writeln!(body, "    return ELF::{none};");
    let _ = writeln!(body, "  }}");

    let sig_params = "const MCValue &Target, const MCFixup &Fixup, bool IsPCRel";
    if rng.chance(0.3) {
        // Style variant: route through a static helper, like ARM does.
        let main = format!(
            "unsigned {qual}::getRelocType({sig_params}) {{\n  return GetRelocTypeInner(Target, Fixup, IsPCRel);\n}}\n"
        );
        let helper = format!("unsigned GetRelocTypeInner({sig_params}) {{\n{body}}}\n");
        Some(Rendered {
            main,
            helpers: vec![helper],
        })
    } else {
        let main = format!("unsigned {qual}::getRelocType({sig_params}) {{\n{body}}}\n");
        Some(Rendered::main_only(main))
    }
}

/// `applyFixup`: extract and place the patched field bits for a fixup.
pub fn apply_fixup(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Emi);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "unsigned {qual}::applyFixup(unsigned Kind, int Value) {{"
    );
    let _ = writeln!(b, "  switch (Kind) {{");
    let _ = writeln!(b, "  case FK_Data_4:");
    let _ = writeln!(b, "    return Value & {};", mask(32));
    for f in &spec.fixups {
        let _ = writeln!(b, "  case {ns}::{}:", f.name);
        let m = mask(f.bits);
        if f.offset > 0 {
            let _ = writeln!(b, "    return (Value >> {}) & {m};", f.offset);
        } else if f.bits == 24 || f.bits == 26 {
            // Branch targets are word-aligned; the field stores Value >> 2.
            let _ = writeln!(b, "    return (Value >> 2) & {m};");
        } else {
            let _ = writeln!(b, "    return Value & {m};");
        }
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    return Value;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getFixupKindInfo`: packed `(offset << 8) | bits` geometry plus a
/// PC-relative flag bit.
pub fn get_fixup_kind_info(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Emi);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getFixupKindInfo(unsigned Kind) {{");
    let _ = writeln!(b, "  switch (Kind) {{");
    for f in &spec.fixups {
        let _ = writeln!(b, "  case {ns}::{}:", f.name);
        if f.reloc_pcrel.is_some() {
            let _ = writeln!(b, "    return ({} << 8) | {} | 65536;", f.offset, f.bits);
        } else {
            let _ = writeln!(b, "    return ({} << 8) | {};", f.offset, f.bits);
        }
    }
    let _ = writeln!(b, "  case FK_Data_4:");
    let _ = writeln!(b, "    return 32;");
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `encodeInstruction`: assemble the binary word — opcode field plus register
/// and immediate fields at word-width-dependent shifts.
pub fn encode_instruction(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Emi);
    let (s0, s1) = reg_shifts(spec.word_bits);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::encodeInstruction(const MCInst &MI) {{");
    let _ = writeln!(b, "  unsigned Opcode = MI.getOpcode();");
    let _ = writeln!(b, "  unsigned Binary = 0;");
    let _ = writeln!(b, "  switch (Opcode) {{");
    for i in &spec.instrs {
        let _ = writeln!(b, "  case {ns}::{}:", i.name);
        let _ = writeln!(b, "    Binary = {};", i.opcode);
        let _ = writeln!(b, "    break;");
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    Binary = 0;");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  Binary = Binary | (MI.getReg(0) << {s0});");
    let _ = writeln!(b, "  Binary = Binary | (MI.getReg(1) << {s1});");
    let _ = writeln!(
        b,
        "  Binary = Binary | ((MI.getImm() & {}) << 8);",
        mask(spec.imm_bits.min(8))
    );
    let _ = writeln!(b, "  return Binary;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getRelaxedOpcode`: compressed → full-width instruction mapping; only
/// targets with a compressed extension implement it.
pub fn get_relaxed_opcode(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_compressed {
        return None;
    }
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Emi);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getRelaxedOpcode(unsigned Opcode) {{");
    for i in &spec.instrs {
        if let Some(wide) = &i.relaxed_to {
            let _ = writeln!(b, "  if (Opcode == {ns}::{}) {{", i.name);
            let _ = writeln!(b, "    return {ns}::{wide};");
            let _ = writeln!(b, "  }}");
        }
    }
    let _ = writeln!(b, "  return Opcode;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `mayNeedRelaxation`: is this a compressed instruction that may widen?
pub fn may_need_relaxation(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_compressed {
        return None;
    }
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Emi);
    let mut b = String::new();
    let _ = writeln!(b, "bool {qual}::mayNeedRelaxation(unsigned Opcode) {{");
    for i in &spec.instrs {
        if i.relaxed_to.is_some() {
            let _ = writeln!(b, "  if (Opcode == {ns}::{}) {{", i.name);
            let _ = writeln!(b, "    return true;");
            let _ = writeln!(b, "  }}");
        }
    }
    let _ = writeln!(b, "  return false;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getInstSizeInBytes`: instruction size, accounting for compression.
pub fn get_inst_size_in_bytes(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Emi);
    let base = if spec.word_bits == 16 { 2 } else { 4 };
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getInstSizeInBytes(unsigned Opcode) {{");
    if spec.traits.has_compressed {
        for i in &spec.instrs {
            if i.format == "C" {
                let _ = writeln!(b, "  if (Opcode == {ns}::{}) {{", i.name);
                let _ = writeln!(b, "    return 2;");
                let _ = writeln!(b, "  }}");
            }
        }
    }
    let _ = writeln!(b, "  return {base};");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}
