//! DIS blueprints — the disassembler module.
//!
//! Absent on targets without a disassembler (xCORE, matching the paper's
//! LLVM 3.0 setup where the xCORE disassembler module does not exist).

use super::{module_qualifier, Rendered};
use crate::arch::ArchSpec;
use crate::backend::Module;
use crate::rng::Mix64;
use std::fmt::Write as _;

/// `decodeInstruction`: primary opcode field → target instruction.
pub fn decode_instruction(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_disassembler {
        return None;
    }
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Dis);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::decodeInstruction(unsigned Insn) {{");
    let _ = writeln!(b, "  unsigned Field = Insn & 255;");
    let _ = writeln!(b, "  switch (Field) {{");
    for i in &spec.instrs {
        let _ = writeln!(b, "  case {}:", i.opcode);
        let _ = writeln!(b, "    return {ns}::{};", i.name);
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `decodeGPRRegisterClass`: bounds-check a decoded register number.
pub fn decode_gpr_register_class(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_disassembler {
        return None;
    }
    let qual = module_qualifier(&spec.name, Module::Dis);
    let count = spec.regs[0].count;
    let mut b = String::new();
    let _ = writeln!(
        b,
        "unsigned {qual}::decodeGPRRegisterClass(unsigned RegNo) {{"
    );
    let _ = writeln!(b, "  if (RegNo >= {count}) {{");
    let _ = writeln!(b, "    return MCDisassembler::Fail;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return MCDisassembler::Success;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getDecodeSize`: how many bytes the next instruction occupies, from its
/// first byte (compressed encodings use the low two bits, RISC-V style).
pub fn get_decode_size(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_disassembler {
        return None;
    }
    let qual = module_qualifier(&spec.name, Module::Dis);
    let base = if spec.word_bits == 16 { 2 } else { 4 };
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getDecodeSize(unsigned Byte) {{");
    if spec.traits.has_compressed {
        let _ = writeln!(b, "  if ((Byte & 3) != 3) {{");
        let _ = writeln!(b, "    return 2;");
        let _ = writeln!(b, "  }}");
    }
    let _ = writeln!(b, "  return {base};");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}
