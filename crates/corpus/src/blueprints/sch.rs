//! SCH blueprints — instruction scheduling.
//!
//! Latencies and micro-op counts are recorded verbatim in the `.td` files, so
//! SCH is highly learnable — the paper reports SCH among the most accurate
//! modules (84.2% on RI5CY).

use super::util::isd_instr;
use super::{module_qualifier, Rendered};
use crate::arch::ArchSpec;
use crate::backend::Module;
use crate::rng::Mix64;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// `getInstrLatency`: per-opcode latency from the scheduling model.
pub fn get_instr_latency(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Sch);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getInstrLatency(unsigned Opcode) {{");
    let _ = writeln!(b, "  switch (Opcode) {{");
    if rng.chance(0.5) {
        // Style A: one case per instruction.
        for i in &spec.instrs {
            if i.latency == 1 {
                continue; // default
            }
            let _ = writeln!(b, "  case {ns}::{}:", i.name);
            let _ = writeln!(b, "    return {};", i.latency);
        }
    } else {
        // Style B: group equal latencies with fall-through labels.
        let mut by_lat: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for i in &spec.instrs {
            if i.latency != 1 {
                by_lat.entry(i.latency).or_default().push(&i.name);
            }
        }
        for (lat, names) in by_lat {
            for n in &names {
                let _ = writeln!(b, "  case {ns}::{n}:");
            }
            let _ = writeln!(b, "    return {lat};");
        }
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return 1;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getNumMicroOps`: decoded micro-op count per opcode.
pub fn get_num_micro_ops(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Sch);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getNumMicroOps(unsigned Opcode) {{");
    for i in spec.instrs.iter().filter(|i| i.micro_ops > 1) {
        let _ = writeln!(b, "  if (Opcode == {ns}::{}) {{", i.name);
        let _ = writeln!(b, "    return {};", i.micro_ops);
        let _ = writeln!(b, "  }}");
    }
    let _ = writeln!(b, "  return 1;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isSchedulingBoundary`: instructions the scheduler must not move across.
pub fn is_scheduling_boundary(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Sch);
    let mut b = String::new();
    let _ = writeln!(b, "bool {qual}::isSchedulingBoundary(unsigned Opcode) {{");
    if let Some(call) = isd_instr(spec, "CALL") {
        let _ = writeln!(b, "  if (Opcode == {ns}::{call}) {{");
        let _ = writeln!(b, "    return true;");
        let _ = writeln!(b, "  }}");
    }
    if let Some(ret) = isd_instr(spec, "RET") {
        let _ = writeln!(b, "  if (Opcode == {ns}::{ret}) {{");
        let _ = writeln!(b, "    return true;");
        let _ = writeln!(b, "  }}");
    }
    if spec.traits.has_threads && spec.instr("TSYNC").is_some() {
        let _ = writeln!(b, "  if (Opcode == {ns}::TSYNC) {{");
        let _ = writeln!(b, "    return true;");
        let _ = writeln!(b, "  }}");
    }
    if spec.traits.has_hwloop && spec.instr("ENDLOOP0").is_some() {
        let _ = writeln!(b, "  if (Opcode == {ns}::ENDLOOP0) {{");
        let _ = writeln!(b, "    return true;");
        let _ = writeln!(b, "  }}");
    }
    let _ = writeln!(b, "  return false;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getOperandLatency`: def-use latency with an optional forwarding bypass.
pub fn get_operand_latency(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Sch);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "int {qual}::getOperandLatency(unsigned DefOpcode, unsigned UseOpcode) {{"
    );
    let _ = writeln!(b, "  int Latency = 1;");
    if let Some(ld) = spec.instr_for_isd("LOAD") {
        let _ = writeln!(b, "  if (DefOpcode == {ns}::{}) {{", ld.name);
        let _ = writeln!(b, "    Latency = {};", ld.latency);
        let _ = writeln!(b, "  }}");
    }
    if let Some(mul) = spec.instr_for_isd("MUL") {
        let _ = writeln!(b, "  if (DefOpcode == {ns}::{}) {{", mul.name);
        let _ = writeln!(b, "    Latency = {};", mul.latency);
        let _ = writeln!(b, "  }}");
    }
    if spec.traits.has_forwarding {
        if let Some(st) = isd_instr(spec, "STORE") {
            let _ = writeln!(b, "  if (UseOpcode == {ns}::{st}) {{");
            let _ = writeln!(b, "    Latency = Latency - 1;");
            let _ = writeln!(b, "  }}");
            let _ = writeln!(b, "  if (Latency < 1) {{");
            let _ = writeln!(b, "    Latency = 1;");
            let _ = writeln!(b, "  }}");
        }
    }
    let _ = writeln!(b, "  return Latency;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getIssueWidth`: instructions issued per cycle.
pub fn get_issue_width(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Sch);
    let width = if spec.traits.has_simd || spec.word_bits == 64 {
        2
    } else {
        1
    };
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getIssueWidth() {{");
    let _ = writeln!(b, "  return {width};");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}
