//! ASS blueprints — assembly parsing.

use super::util::imm_range;
use super::{module_qualifier, Rendered};
use crate::arch::ArchSpec;
use crate::backend::Module;
use crate::rng::Mix64;
use std::fmt::Write as _;

/// `parseRegister`: well-known register spellings → register numbers.
pub fn parse_register(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Ass);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::parseRegister(StringRef Name) {{");
    let _ = writeln!(b, "  if (Name == \"sp\") {{");
    let _ = writeln!(b, "    return {ns}::{};", spec.sp_reg);
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  if (Name == \"fp\") {{");
    let _ = writeln!(b, "    return {ns}::{};", spec.fp_reg);
    let _ = writeln!(b, "  }}");
    if spec.word_bits > 16 {
        // Idiosyncrasy: the link register's assembly alias varies ("ra"/"lr").
        let alias = if rng.chance(0.4) { "lr" } else { "ra" };
        let _ = writeln!(b, "  if (Name == \"{alias}\") {{");
        let _ = writeln!(b, "    return {ns}::{};", spec.ra_reg);
        let _ = writeln!(b, "  }}");
    }
    let prefix = spec.regs[0].prefix.to_lowercase();
    for i in 0..2u32 {
        let _ = writeln!(b, "  if (Name == \"{prefix}{i}\") {{");
        let _ = writeln!(b, "    return {ns}::{}{i};", spec.regs[0].prefix);
        let _ = writeln!(b, "  }}");
    }
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `matchMnemonic`: assembly mnemonic → target opcode.
pub fn match_mnemonic(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Ass);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::matchMnemonic(StringRef Mnemonic) {{");
    for i in &spec.instrs {
        let _ = writeln!(b, "  if (Mnemonic == \"{}\") {{", i.mnemonic);
        let _ = writeln!(b, "    return {ns}::{};", i.name);
        let _ = writeln!(b, "  }}");
    }
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isValidAsmImmediate`: range-check an immediate for a fixup kind.
pub fn is_valid_asm_immediate(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Ass);
    let (lo, hi) = imm_range(spec.imm_bits);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "bool {qual}::isValidAsmImmediate(int Imm, unsigned Kind) {{"
    );
    let _ = writeln!(b, "  switch (Kind) {{");
    for f in &spec.fixups {
        let max = if f.bits >= 63 {
            i64::MAX
        } else {
            (1i64 << f.bits) - 1
        };
        let _ = writeln!(b, "  case {ns}::{}:", f.name);
        let _ = writeln!(b, "    return Imm >= 0 && Imm <= {max};");
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return Imm >= {lo} && Imm <= {hi};");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getCommentString`: the assembly comment leader (straight from the `.td`).
pub fn get_comment_string(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Ass);
    let mut b = String::new();
    let _ = writeln!(b, "StringRef {qual}::getCommentString() {{");
    let _ = writeln!(b, "  return \"{}\";", spec.comment);
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getRegisterPrefix`: the lower-case register spelling prefix.
pub fn get_register_prefix(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Ass);
    let mut b = String::new();
    let _ = writeln!(b, "StringRef {qual}::getRegisterPrefix() {{");
    let _ = writeln!(b, "  return \"{}\";", spec.regs[0].prefix.to_lowercase());
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}
