//! OPT blueprints — machine-dependent optimization.
//!
//! Profitability thresholds encode microarchitectural judgment calls that the
//! description files do not record, so this module has a high idiosyncrasy
//! rate (the paper reports OPT as needing the most manual effort after SEL).

use super::util::{imm_range, isd_instr};
use super::{module_qualifier, Rendered};
use crate::arch::ArchSpec;
use crate::backend::Module;
use crate::rng::Mix64;
use std::fmt::Write as _;

/// `foldImmediate`: fold a register ALU op into its immediate form.
pub fn fold_immediate(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Opt);
    let add = isd_instr(spec, "ADD")?;
    let addi = spec
        .instrs
        .iter()
        .find(|i| i.mnemonic == "addi")
        .map(|i| i.name.clone())?;
    let (lo, hi) = imm_range(spec.imm_bits);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "unsigned {qual}::foldImmediate(unsigned Opcode, int Imm) {{"
    );
    let _ = writeln!(b, "  if (Imm < {lo} || Imm > {hi}) {{");
    let _ = writeln!(b, "    return 0;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  if (Opcode == {ns}::{add}) {{");
    let _ = writeln!(b, "    return {ns}::{addi};");
    let _ = writeln!(b, "  }}");
    // Idiosyncrasy: some targets also fold SUB by negating the immediate.
    if rng.chance(0.25) {
        if let Some(sub) = isd_instr(spec, "SUB") {
            let _ = writeln!(b, "  if (Opcode == {ns}::{sub}) {{");
            let _ = writeln!(b, "    return {ns}::{addi};");
            let _ = writeln!(b, "  }}");
        }
    }
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `combineMulAdd`: fuse multiply+add into a MAC; only MAC-capable targets
/// implement this interface.
pub fn combine_mul_add(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_mac || spec.instr("MAC").is_none() {
        return None;
    }
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Opt);
    let mul = isd_instr(spec, "MUL")?;
    let add = isd_instr(spec, "ADD")?;
    let mut b = String::new();
    let _ = writeln!(
        b,
        "unsigned {qual}::combineMulAdd(unsigned MulOpcode, unsigned AddOpcode) {{"
    );
    let _ = writeln!(b, "  if (MulOpcode != {ns}::{mul}) {{");
    let _ = writeln!(b, "    return 0;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  if (AddOpcode != {ns}::{add}) {{");
    let _ = writeln!(b, "    return 0;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return {ns}::MAC;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isHardwareLoopProfitable`: hardware-loop legality/profit check; only
/// targets with zero-overhead loop hardware implement it.
pub fn is_hardware_loop_profitable(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_hwloop {
        return None;
    }
    let qual = module_qualifier(&spec.name, Module::Opt);
    // Loop-buffer capacity differs per implementation and is undocumented.
    let max_body = *rng.pick(&[32i64, 64]);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "bool {qual}::isHardwareLoopProfitable(int TripCount, int NumInstrs) {{"
    );
    let _ = writeln!(b, "  if (TripCount < 2) {{");
    let _ = writeln!(b, "    return false;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  if (NumInstrs > {max_body}) {{");
    let _ = writeln!(b, "    return false;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return true;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isProfitableToHoist`: loop-invariant hoisting heuristic.
pub fn is_profitable_to_hoist(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Opt);
    let depth_cap = *rng.pick(&[2i64, 3]);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "bool {qual}::isProfitableToHoist(unsigned Opcode, int Depth) {{"
    );
    let _ = writeln!(b, "  if (Depth > {depth_cap}) {{");
    let _ = writeln!(b, "    return false;");
    let _ = writeln!(b, "  }}");
    if let Some(div) = isd_instr(spec, "SDIV") {
        let _ = writeln!(b, "  if (Opcode == {ns}::{div}) {{");
        let _ = writeln!(b, "    return false;");
        let _ = writeln!(b, "  }}");
    }
    // Idiosyncrasy: some memory systems make hoisted loads a loss.
    if rng.chance(0.2) {
        if let Some(ld) = isd_instr(spec, "LOAD") {
            let _ = writeln!(b, "  if (Opcode == {ns}::{ld}) {{");
            let _ = writeln!(b, "    return false;");
            let _ = writeln!(b, "  }}");
        }
    }
    let _ = writeln!(b, "  return true;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isProfitableToDupForIfCvt`: if-conversion duplication threshold.
pub fn is_profitable_to_dup(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Opt);
    let base = if spec.traits.has_cmov { 4 } else { 2 };
    let cap = base + if rng.chance(0.3) { 1 } else { 0 };
    let mut b = String::new();
    let _ = writeln!(
        b,
        "bool {qual}::isProfitableToDupForIfCvt(int NumInstrs) {{"
    );
    let _ = writeln!(b, "  return NumInstrs <= {cap};");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}
