//! SEL blueprints — instruction selection.
//!
//! SEL is the paper's largest and least accurate module: selection choices
//! (custom lowering vs. expansion, which ops get native patterns) encode
//! design decisions that are not visible in the description files, so this
//! module carries the highest idiosyncrasy rates.

use super::util::{imm_range, isd_instr};
use super::{module_qualifier, Rendered};
use crate::arch::{ArchSpec, ISD_OPCODES};
use crate::backend::Module;
use crate::rng::Mix64;
use std::fmt::Write as _;

/// `selectOpcode`: map a generic ISD opcode to the target instruction.
pub fn select_opcode(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Sel);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::selectOpcode(unsigned Opcode) {{");
    let _ = writeln!(b, "  switch (Opcode) {{");
    for isd in ISD_OPCODES {
        let Some(instr) = isd_instr(spec, isd) else {
            continue;
        };
        // Idiosyncrasy: some targets route MUL/SDIV through a libcall even
        // though the instruction exists (not inferable from the .td files).
        if matches!(*isd, "MUL" | "SDIV") && rng.chance(0.12) {
            continue;
        }
        let _ = writeln!(b, "  case ISD::{isd}:");
        let _ = writeln!(b, "    return {ns}::{instr};");
    }
    if spec.traits.has_simd {
        for (visd, iname) in [("VEC_ADD", "VADD"), ("VEC_MUL", "VMUL")] {
            if spec.instr(iname).is_some() {
                let _ = writeln!(b, "  case ISD::{visd}:");
                let _ = writeln!(b, "    return {ns}::{iname};");
            }
        }
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getOperationAction`: Legal (0) / Expand (1) / Custom (2) per ISD opcode.
pub fn get_operation_action(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Sel);
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getOperationAction(unsigned Opcode) {{");
    let _ = writeln!(b, "  switch (Opcode) {{");
    for isd in ISD_OPCODES {
        let action = if isd_instr(spec, isd).is_some() {
            // Idiosyncrasy: occasionally a target custom-lowers a legal op.
            if rng.chance(0.08) {
                2
            } else {
                0
            }
        } else if matches!(*isd, "SELECT" | "SETCC") && rng.chance(0.5) {
            2
        } else {
            1
        };
        if action == 0 {
            continue; // Legal is the default; only non-legal ops get cases.
        }
        let _ = writeln!(b, "  case ISD::{isd}:");
        let _ = writeln!(b, "    return {action};");
    }
    let _ = writeln!(b, "  default:");
    let _ = writeln!(b, "    break;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return 0;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isLegalImmediate`: does the value fit the ALU immediate field?
pub fn is_legal_immediate(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Sel);
    let (lo, hi) = imm_range(spec.imm_bits);
    let mut b = String::new();
    let _ = writeln!(b, "bool {qual}::isLegalImmediate(int Imm) {{");
    if rng.chance(0.4) {
        // Style variant: single compound return.
        let _ = writeln!(b, "  return Imm >= {lo} && Imm <= {hi};");
    } else {
        let _ = writeln!(b, "  if (Imm < {lo}) {{");
        let _ = writeln!(b, "    return false;");
        let _ = writeln!(b, "  }}");
        let _ = writeln!(b, "  if (Imm > {hi}) {{");
        let _ = writeln!(b, "    return false;");
        let _ = writeln!(b, "  }}");
        let _ = writeln!(b, "  return true;");
    }
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getAddrMode`: classify the addressing mode of a memory/branch operand.
pub fn get_addr_mode(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Sel);
    let ld = isd_instr(spec, "LOAD")?;
    let st = isd_instr(spec, "STORE")?;
    let (lo, hi) = imm_range(spec.imm_bits);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "unsigned {qual}::getAddrMode(unsigned Opcode, int Offset) {{"
    );
    let _ = writeln!(b, "  if (Opcode == {ns}::{ld} || Opcode == {ns}::{st}) {{");
    let _ = writeln!(b, "    if (Offset >= {lo} && Offset <= {hi}) {{");
    let _ = writeln!(b, "      return TargetLowering::AM_BaseImm;");
    let _ = writeln!(b, "    }}");
    let _ = writeln!(b, "    return TargetLowering::AM_BaseReg;");
    let _ = writeln!(b, "  }}");
    if spec.traits.has_pcrel {
        if let Some(call) = isd_instr(spec, "CALL") {
            let _ = writeln!(b, "  if (Opcode == {ns}::{call}) {{");
            let _ = writeln!(b, "    return TargetLowering::AM_PCRel;");
            let _ = writeln!(b, "  }}");
        }
    }
    let _ = writeln!(b, "  return TargetLowering::AM_Base;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getSelectOpcode`: conditional-move selection; only targets with a native
/// conditional move implement this interface.
pub fn get_select_opcode(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    if !spec.traits.has_cmov {
        return None;
    }
    let ns = &spec.name;
    let qual = module_qualifier(ns, Module::Sel);
    let cmov = isd_instr(spec, "SELECT")?;
    let mut b = String::new();
    let _ = writeln!(b, "unsigned {qual}::getSelectOpcode(unsigned Opcode) {{");
    let _ = writeln!(b, "  if (Opcode != ISD::SELECT) {{");
    let _ = writeln!(b, "    return 0;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return {ns}::{cmov};");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `isTruncateFree`: 64-bit targets truncate i64→i32 for free.
pub fn is_truncate_free(spec: &ArchSpec, _rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Sel);
    let mut b = String::new();
    let _ = writeln!(
        b,
        "bool {qual}::isTruncateFree(unsigned SrcVT, unsigned DstVT) {{"
    );
    if spec.word_bits == 64 {
        let _ = writeln!(b, "  if (SrcVT == MVT::i64 && DstVT == MVT::i32) {{");
        let _ = writeln!(b, "    return true;");
        let _ = writeln!(b, "  }}");
    }
    let _ = writeln!(b, "  return false;");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}

/// `getImmCost`: extra instructions needed to materialize an immediate.
pub fn get_imm_cost(spec: &ArchSpec, rng: &mut Mix64) -> Option<Rendered> {
    let qual = module_qualifier(&spec.name, Module::Sel);
    let (lo, hi) = imm_range(spec.imm_bits);
    // Idiosyncratic materialization cost: depends on the target's sequence
    // (lui+addi vs movw/movt vs constant pool) — not in the .td files.
    let cost = if spec.imm_bits >= 20 {
        1
    } else if rng.chance(0.25) {
        1
    } else {
        2
    };
    let mut b = String::new();
    let _ = writeln!(b, "int {qual}::getImmCost(int Imm) {{");
    let _ = writeln!(b, "  if (Imm >= {lo} && Imm <= {hi}) {{");
    let _ = writeln!(b, "    return 0;");
    let _ = writeln!(b, "  }}");
    let _ = writeln!(b, "  return {cost};");
    let _ = writeln!(b, "}}");
    Some(Rendered::main_only(b))
}
