//! Shared helpers for blueprint rendering.

use crate::arch::ArchSpec;

/// Signed immediate range for an `imm_bits`-wide field.
pub fn imm_range(bits: u32) -> (i64, i64) {
    let half = 1i64 << (bits - 1);
    (-half, half - 1)
}

/// The instruction name selected for `isd`, if the target has one.
pub fn isd_instr(spec: &ArchSpec, isd: &str) -> Option<String> {
    spec.instr_for_isd(isd).map(|i| i.name.clone())
}

/// Mask literal for a `bits`-wide field.
pub fn mask(bits: u32) -> i64 {
    if bits >= 63 {
        i64::MAX
    } else {
        (1i64 << bits) - 1
    }
}

/// Register-field shift amounts used by the encoder, derived from the word
/// width (and therefore learnable from `WordBits` in the `.td` file).
pub fn reg_shifts(word_bits: u32) -> (u32, u32) {
    match word_bits {
        16 => (8, 4),
        32 => (21, 16),
        _ => (32, 24),
    }
}
