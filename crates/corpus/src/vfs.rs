//! An in-memory virtual file system.
//!
//! The paper's feature selection walks two directory families: `LLVMDIRs`
//! (LLVM-provided code) and `TGTDIRs` (target description files). The corpus
//! materializes both as virtual file systems so Algorithm 1 can be
//! implemented verbatim without touching the host disk.

use std::collections::BTreeMap;

/// An immutable-after-build, path-keyed store of text files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualFs {
    files: BTreeMap<String, String>,
}

impl VirtualFs {
    /// Creates an empty file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes (or overwrites) a file.
    ///
    /// # Examples
    /// ```
    /// use vega_corpus::VirtualFs;
    /// let mut fs = VirtualFs::new();
    /// fs.write("lib/Target/ARM/ARM.td", "def ARM : Target { Name = \"ARM\" }");
    /// assert!(fs.read("lib/Target/ARM/ARM.td").is_some());
    /// ```
    pub fn write(&mut self, path: impl Into<String>, content: impl Into<String>) {
        self.files.insert(path.into(), content.into());
    }

    /// Reads a file's content.
    ///
    /// Instrumented with the `vfs.read` fault site: an injected transient
    /// read failure is retried (bounded) until an attempt succeeds, so a
    /// chaos plan exercises the retry path without ever changing what the
    /// caller observes — the returned content is always the real one.
    pub fn read(&self, path: &str) -> Option<&str> {
        let mut injected = 0u64;
        while vega_fault::check(vega_fault::sites::VFS_READ).is_some() {
            injected += 1;
            if injected >= 16 {
                break; // a rate=1 plan must not spin forever
            }
        }
        vega_fault::recovered_n(vega_fault::sites::VFS_READ, injected);
        self.files.get(path).map(String::as_str)
    }

    /// Iterates over `(path, content)` pairs under a directory prefix, in
    /// path order.
    pub fn files_under<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.files
            .range(prefix.to_string()..)
            .take_while(move |(p, _)| p.starts_with(prefix))
            .map(|(p, c)| (p.as_str(), c.as_str()))
    }

    /// Iterates over all `(path, content)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(p, c)| (p.as_str(), c.as_str()))
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` if there are no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Merges all files from `other`, overwriting on conflicts.
    pub fn extend_from(&mut self, other: &VirtualFs) {
        for (p, c) in other.iter() {
            self.files.insert(p.to_string(), c.to_string());
        }
    }
}

impl FromIterator<(String, String)> for VirtualFs {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        VirtualFs {
            files: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_query_is_exact() {
        let mut fs = VirtualFs::new();
        fs.write("lib/Target/ARM/ARM.td", "a");
        fs.write("lib/Target/ARM64/ARM64.td", "b");
        fs.write("lib/Target/Mips/Mips.td", "c");
        let arm: Vec<_> = fs.files_under("lib/Target/ARM/").collect();
        assert_eq!(arm, vec![("lib/Target/ARM/ARM.td", "a")]);
        assert_eq!(fs.files_under("lib/Target/").count(), 3);
    }

    #[test]
    fn overwrite_and_merge() {
        let mut a = VirtualFs::new();
        a.write("x", "1");
        let mut b = VirtualFs::new();
        b.write("x", "2");
        b.write("y", "3");
        a.extend_from(&b);
        assert_eq!(a.read("x"), Some("2"));
        assert_eq!(a.len(), 2);
    }
}
