//! Target description file generation (`TGTDIRs`).
//!
//! From an [`ArchSpec`] this module renders the `.td`, `.h` and `.def` files
//! a developer would write for a new LLVM target. These files are the *only*
//! input VEGA receives about a new target (paper §3.4); the backend code
//! itself is derived ground truth used for training and evaluation.
//!
//! File naming follows LLVM's conventions so feature selection can locate a
//! new target's files by pattern: `lib/Target/{NS}/{NS}.td`,
//! `{NS}InstrInfo.td`, `{NS}RegisterInfo.td`, `{NS}FixupKinds.h`,
//! `{NS}MCExpr.h` and `llvm/BinaryFormat/ELFRelocs/{NS}.def`.

use crate::arch::ArchSpec;
use crate::vfs::VirtualFs;
use std::fmt::Write as _;

/// Renders all description files of `spec` into a fresh virtual FS.
pub fn describe_target(spec: &ArchSpec) -> VirtualFs {
    let mut fs = VirtualFs::new();
    let ns = &spec.name;
    let dir = format!("lib/Target/{ns}");

    // --- {NS}.td ------------------------------------------------------------
    let mut td = String::new();
    let _ = writeln!(td, "// Target definition for {ns}.");
    let _ = writeln!(td, "def {ns} : Target {{");
    let _ = writeln!(td, "  Name = \"{ns}\"");
    let _ = writeln!(td, "  Endianness = \"{}\"", spec.endian.td_name());
    let _ = writeln!(td, "  WordBits = {}", spec.word_bits);
    let _ = writeln!(td, "  CommentString = \"{}\"", spec.comment);
    let _ = writeln!(td, "}}");
    let t = &spec.traits;
    let _ = writeln!(td, "def {ns}Features : ProcessorFeatures {{");
    let _ = writeln!(td, "  HasHWLoop = {}", u8::from(t.has_hwloop));
    let _ = writeln!(td, "  HasSIMD = {}", u8::from(t.has_simd));
    let _ = writeln!(td, "  HasMAC = {}", u8::from(t.has_mac));
    let _ = writeln!(td, "  HasCompressed = {}", u8::from(t.has_compressed));
    let _ = writeln!(td, "  HasThreads = {}", u8::from(t.has_threads));
    let _ = writeln!(td, "  HasForwarding = {}", u8::from(t.has_forwarding));
    let _ = writeln!(td, "  HasCMov = {}", u8::from(t.has_cmov));
    let _ = writeln!(td, "  HasFPU = {}", u8::from(t.has_fpu));
    let _ = writeln!(td, "}}");
    fs.write(format!("{dir}/{ns}.td"), td);

    // --- {NS}InstrInfo.td ----------------------------------------------------
    let mut ii = String::new();
    let _ = writeln!(ii, "// Instruction definitions for {ns}.");
    for i in &spec.instrs {
        let _ = writeln!(ii, "def {} : Instruction {{", i.name);
        let _ = writeln!(ii, "  Mnemonic = \"{}\"", i.mnemonic);
        let _ = writeln!(ii, "  Format = \"{}\"", i.format);
        let _ = writeln!(ii, "  Opcode = {}", i.opcode);
        let _ = writeln!(ii, "  Latency = {}", i.latency);
        let _ = writeln!(ii, "  MicroOps = {}", i.micro_ops);
        if let Some(isd) = &i.isd {
            let _ = writeln!(ii, "  SelectFrom = \"{isd}\"");
        }
        if i.is_branch {
            let _ = writeln!(ii, "  IsBranch = 1");
        }
        if i.is_load {
            let _ = writeln!(ii, "  IsLoad = 1");
        }
        if i.is_store {
            let _ = writeln!(ii, "  IsStore = 1");
        }
        if let Some(rt) = &i.relaxed_to {
            let _ = writeln!(ii, "  RelaxedTo = \"{rt}\"");
        }
        let _ = writeln!(ii, "}}");
    }
    if spec.traits.has_pcrel {
        // The motivating example's partial-match anchor: IsPCRel ↔
        // OperandType = "OPERAND_PCREL".
        let _ = writeln!(ii, "def {ns}PCRelOperand : Instruction {{");
        let _ = writeln!(ii, "  OperandType = \"OPERAND_PCREL\"");
        let _ = writeln!(ii, "}}");
    }
    let _ = writeln!(ii, "def {ns}Imm : ImmOperand {{");
    let _ = writeln!(ii, "  ImmBits = {}", spec.imm_bits);
    let _ = writeln!(ii, "}}");
    fs.write(format!("{dir}/{ns}InstrInfo.td"), ii);

    // --- {NS}RegisterInfo.td -------------------------------------------------
    let mut ri = String::new();
    let _ = writeln!(ri, "// Register definitions for {ns}.");
    for rc in &spec.regs {
        let _ = writeln!(ri, "def {} : RegisterClass {{", rc.name);
        let _ = writeln!(ri, "  RegPrefix = \"{}\"", rc.prefix);
        let _ = writeln!(ri, "  NumRegs = {}", rc.count);
        let _ = writeln!(ri, "  SpillSize = {}", rc.spill_size);
        let _ = writeln!(ri, "  ValueType = \"{}\"", rc.vt);
        let _ = writeln!(ri, "}}");
    }
    let _ = writeln!(ri, "def {ns}Special : SpecialRegs {{");
    let _ = writeln!(ri, "  StackPointer = \"{}\"", spec.sp_reg);
    let _ = writeln!(ri, "  FramePointer = \"{}\"", spec.fp_reg);
    let _ = writeln!(ri, "  ReturnAddress = \"{}\"", spec.ra_reg);
    let _ = writeln!(ri, "}}");
    fs.write(format!("{dir}/{ns}RegisterInfo.td"), ri);

    // --- {NS}FixupKinds.h ------------------------------------------------------
    let mut fk = String::new();
    let _ = writeln!(fk, "// Target fixup kinds for {ns}.");
    let _ = writeln!(fk, "enum Fixups {{");
    for (i, f) in spec.fixups.iter().enumerate() {
        if i == 0 {
            let _ = writeln!(fk, "  {} = FirstTargetFixupKind,", f.name);
        } else {
            let _ = writeln!(fk, "  {},", f.name);
        }
    }
    let _ = writeln!(fk, "  NumTargetFixupKinds,");
    let _ = writeln!(fk, "}};");
    for f in &spec.fixups {
        // Field geometry, consumed by applyFixup/getFixupKindInfo.
        let _ = writeln!(fk, "// {}: bits={} offset={}", f.name, f.bits, f.offset);
    }
    fs.write(format!("{dir}/{ns}FixupKinds.h"), fk);

    // --- {NS}MCExpr.h (variant kinds) ----------------------------------------
    if !spec.variant_kinds.is_empty() {
        let mut vk = String::new();
        let _ = writeln!(vk, "// Target-specific symbol variant kinds for {ns}.");
        let _ = writeln!(vk, "enum VariantKind {{");
        for (i, v) in spec.variant_kinds.iter().enumerate() {
            let _ = writeln!(vk, "  {v} = {},", i + 1);
        }
        let _ = writeln!(vk, "}};");
        fs.write(format!("{dir}/{ns}MCExpr.h"), vk);
    }

    // --- ELFRelocs/{NS}.def -----------------------------------------------------
    let mut def = String::new();
    let _ = writeln!(def, "// ELF relocations for {ns}.");
    for (i, r) in spec.reloc_names().iter().enumerate() {
        let _ = writeln!(def, "ELF_RELOC({r}, {i})");
    }
    fs.write(format!("llvm/BinaryFormat/ELFRelocs/{ns}.def"), def);

    fs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::eval_targets;

    #[test]
    fn file_naming_follows_llvm_convention() {
        let rv = &eval_targets()[0];
        let fs = describe_target(rv);
        assert!(fs.read("lib/Target/RISCV/RISCV.td").is_some());
        assert!(fs.read("lib/Target/RISCV/RISCVInstrInfo.td").is_some());
        assert!(fs.read("lib/Target/RISCV/RISCVFixupKinds.h").is_some());
        assert!(fs.read("llvm/BinaryFormat/ELFRelocs/RISCV.def").is_some());
    }

    #[test]
    fn motivating_example_anchors_present() {
        let rv = &eval_targets()[0];
        let fs = describe_target(rv);
        let td = fs.read("lib/Target/RISCV/RISCV.td").unwrap();
        assert!(td.contains("Name = \"RISCV\""));
        let ii = fs.read("lib/Target/RISCV/RISCVInstrInfo.td").unwrap();
        assert!(ii.contains("OperandType = \"OPERAND_PCREL\""));
        let fk = fs.read("lib/Target/RISCV/RISCVFixupKinds.h").unwrap();
        assert!(fk.contains("= FirstTargetFixupKind,"));
    }

    #[test]
    fn xcore_has_no_variant_kind_file() {
        let xc = &eval_targets()[2];
        let fs = describe_target(xc);
        assert!(fs.read("lib/Target/XCore/XCoreMCExpr.h").is_none());
    }

    #[test]
    fn reloc_def_numbering_matches_spec() {
        let rv = &eval_targets()[0];
        let fs = describe_target(rv);
        let def = fs.read("llvm/BinaryFormat/ELFRelocs/RISCV.def").unwrap();
        assert!(def.contains("ELF_RELOC(R_RISCV_NONE, 0)"));
        for r in rv.reloc_names() {
            assert!(def.contains(&format!("ELF_RELOC({r},")));
        }
    }
}
