//! Architecture specifications.
//!
//! An [`ArchSpec`] is the ground truth for one target: its ISA, registers,
//! fixups/relocations and feature traits. From a spec the corpus derives both
//! the target description files (`TGTDIRs`, see [`crate::tdgen`]) and the
//! reference backend implementation (see [`crate::blueprints`]). VEGA itself
//! never sees an `ArchSpec` — for a new target it only receives the
//! description files, exactly as the paper prescribes.

/// Byte order of the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endian {
    /// Least-significant byte first.
    Little,
    /// Most-significant byte first.
    Big,
}

impl Endian {
    /// The spelling used in `.td` files (`Endianness = "little"`).
    pub fn td_name(self) -> &'static str {
        match self {
            Endian::Little => "little",
            Endian::Big => "big",
        }
    }
}

/// Boolean feature traits that gate optional backend code paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // trait names are self-describing feature flags
pub struct ArchTraits {
    pub has_pcrel: bool,
    pub has_variant_kind: bool,
    pub has_fpu: bool,
    pub has_mac: bool,
    pub has_hwloop: bool,
    pub has_simd: bool,
    pub has_compressed: bool,
    pub has_threads: bool,
    pub has_disassembler: bool,
    pub has_cmov: bool,
    pub has_forwarding: bool,
}

/// One machine instruction definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrDef {
    /// Backend-level name, e.g. `ADD` (referenced as `NS::ADD`).
    pub name: String,
    /// Assembly mnemonic, e.g. `add`.
    pub mnemonic: String,
    /// The generic ISD opcode this instruction selects from, if any.
    pub isd: Option<String>,
    /// Scheduling latency in cycles.
    pub latency: u32,
    /// Number of decoded micro-ops.
    pub micro_ops: u32,
    /// Encoding format tag (`"R"`, `"I"`, `"B"`, `"M"`, `"C"`).
    pub format: String,
    /// Primary opcode field value in the encoding.
    pub opcode: u32,
    /// True for control-flow instructions.
    pub is_branch: bool,
    /// True for memory loads.
    pub is_load: bool,
    /// True for memory stores.
    pub is_store: bool,
    /// For compressed instructions: the wide instruction to relax into.
    pub relaxed_to: Option<String>,
}

impl InstrDef {
    /// Creates a plain ALU instruction selecting from `isd`.
    pub fn alu(name: &str, mnemonic: &str, isd: &str, latency: u32, opcode: u32) -> Self {
        InstrDef {
            name: name.to_string(),
            mnemonic: mnemonic.to_string(),
            isd: Some(isd.to_string()),
            latency,
            micro_ops: 1,
            format: "R".to_string(),
            opcode,
            is_branch: false,
            is_load: false,
            is_store: false,
            relaxed_to: None,
        }
    }
}

/// One register class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegClass {
    /// Class name, e.g. `GPR`.
    pub name: String,
    /// Register name prefix, e.g. `X` yields `X0`, `X1`, ….
    pub prefix: String,
    /// Number of registers in the class.
    pub count: u32,
    /// Spill slot size in bytes.
    pub spill_size: u32,
    /// The value type the class carries (`i32`, `i64`, `f32`, `f64`, `v128`).
    pub vt: String,
}

/// One fixup kind with its relocation mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixupDef {
    /// Fixup name, e.g. `fixup_arm_movt_hi16`.
    pub name: String,
    /// Absolute relocation emitted for this fixup, e.g. `R_ARM_MOVT_ABS`.
    pub reloc_abs: String,
    /// PC-relative relocation, if the fixup supports PC-relative uses.
    pub reloc_pcrel: Option<String>,
    /// Width of the patched field in bits.
    pub bits: u32,
    /// Bit offset of the patched field.
    pub offset: u32,
}

/// Complete specification of one target architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpec {
    /// Namespace / target name, e.g. `ARM`, `RISCV` (used as `NS::` in code
    /// and as `{NS}` in description file paths).
    pub name: String,
    /// Byte order.
    pub endian: Endian,
    /// Machine word width in bits.
    pub word_bits: u32,
    /// Immediate field width for ALU-immediate instructions.
    pub imm_bits: u32,
    /// Feature traits.
    pub traits: ArchTraits,
    /// Instruction set.
    pub instrs: Vec<InstrDef>,
    /// Register classes.
    pub regs: Vec<RegClass>,
    /// Fixups and their relocation mappings.
    pub fixups: Vec<FixupDef>,
    /// Symbol-reference variant kinds (e.g. `VK_ARM_GOT`); empty unless
    /// `traits.has_variant_kind`.
    pub variant_kinds: Vec<String>,
    /// Stack pointer register name.
    pub sp_reg: String,
    /// Frame pointer register name.
    pub fp_reg: String,
    /// Return address register name (empty if the target pushes to stack).
    pub ra_reg: String,
    /// Assembly comment leader, e.g. `#`.
    pub comment: String,
}

impl ArchSpec {
    /// Looks up an instruction by name.
    pub fn instr(&self, name: &str) -> Option<&InstrDef> {
        self.instrs.iter().find(|i| i.name == name)
    }

    /// The instruction selected for a generic ISD opcode, if any.
    pub fn instr_for_isd(&self, isd: &str) -> Option<&InstrDef> {
        self.instrs.iter().find(|i| i.isd.as_deref() == Some(isd))
    }

    /// Looks up a fixup by name.
    pub fn fixup(&self, name: &str) -> Option<&FixupDef> {
        self.fixups.iter().find(|f| f.name == name)
    }

    /// Index of a register within the flat register file (class-major), or
    /// `None` if unknown. Register names are `prefix + index`.
    pub fn reg_number(&self, reg: &str) -> Option<u32> {
        let mut base = 0u32;
        for rc in &self.regs {
            if let Some(idx) = reg.strip_prefix(rc.prefix.as_str()) {
                if let Ok(i) = idx.parse::<u32>() {
                    if i < rc.count {
                        return Some(base + i);
                    }
                }
            }
            base += rc.count;
        }
        None
    }

    /// All relocation names, `R_<NS>_NONE` first, in `.def` order.
    pub fn reloc_names(&self) -> Vec<String> {
        let mut v = vec![format!("R_{}_NONE", self.name.to_uppercase())];
        for f in &self.fixups {
            if !v.contains(&f.reloc_abs) {
                v.push(f.reloc_abs.clone());
            }
            if let Some(p) = &f.reloc_pcrel {
                if !v.contains(p) {
                    v.push(p.clone());
                }
            }
        }
        v
    }

    /// The numeric value of a relocation name per the `.def` ordering.
    pub fn reloc_value(&self, name: &str) -> Option<i64> {
        self.reloc_names()
            .iter()
            .position(|r| r == name)
            .map(|i| i as i64)
    }

    /// The numeric value of a target fixup (`FirstTargetFixupKind + index`).
    pub fn fixup_value(&self, name: &str) -> Option<i64> {
        self.fixups
            .iter()
            .position(|f| f.name == name)
            .map(|i| FIRST_TARGET_FIXUP_KIND + i as i64)
    }
}

/// Value of LLVM's `FirstTargetFixupKind` in the miniature `MCFixup.h`.
pub const FIRST_TARGET_FIXUP_KIND: i64 = 64;

/// The generic ISD opcodes shared by all targets (miniature `ISDOpcodes.h`).
pub const ISD_OPCODES: &[&str] = &[
    "ADD", "SUB", "MUL", "SDIV", "AND", "OR", "XOR", "SHL", "SRL", "SRA", "LOAD", "STORE", "BR",
    "BRCOND", "SELECT", "SETCC", "RET", "CALL", "FADD", "FMUL",
];

/// Numeric value of an ISD opcode (its index + 1; 0 is `DELETED_NODE`).
pub fn isd_value(name: &str) -> Option<i64> {
    ISD_OPCODES
        .iter()
        .position(|o| *o == name)
        .map(|i| i as i64 + 1)
}

/// Generic MC fixup kinds available to all targets (miniature `MCFixup.h`).
pub const GENERIC_FIXUPS: &[&str] = &[
    "FK_NONE",
    "FK_Data_1",
    "FK_Data_2",
    "FK_Data_4",
    "FK_Data_8",
];

/// Value types used by register classes (miniature `MachineValueType.h`).
pub const VALUE_TYPES: &[&str] = &["i32", "i64", "f32", "f64", "v128"];

/// Numeric id of a value type.
pub fn vt_value(name: &str) -> Option<i64> {
    VALUE_TYPES
        .iter()
        .position(|v| *v == name)
        .map(|i| i as i64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::builtin_targets;

    #[test]
    fn reloc_numbering_starts_at_none() {
        let arm = builtin_targets(0)
            .into_iter()
            .find(|t| t.name == "ARM")
            .unwrap();
        assert_eq!(arm.reloc_value(&format!("R_ARM_NONE")), Some(0));
        let some = &arm.fixups[0].reloc_abs;
        assert!(arm.reloc_value(some).unwrap() > 0);
    }

    #[test]
    fn fixup_values_offset_by_first_target_kind() {
        let arm = builtin_targets(0)
            .into_iter()
            .find(|t| t.name == "ARM")
            .unwrap();
        let first = &arm.fixups[0].name;
        assert_eq!(arm.fixup_value(first), Some(FIRST_TARGET_FIXUP_KIND));
    }

    #[test]
    fn reg_numbering_is_class_major() {
        let arm = builtin_targets(0)
            .into_iter()
            .find(|t| t.name == "ARM")
            .unwrap();
        let rc0 = &arm.regs[0];
        assert_eq!(arm.reg_number(&format!("{}0", rc0.prefix)), Some(0));
        assert_eq!(arm.reg_number("NOPE7"), None);
    }

    #[test]
    fn isd_values_are_stable() {
        assert_eq!(isd_value("ADD"), Some(1));
        assert_eq!(isd_value("CALL"), Some(18));
        assert_eq!(isd_value("NOSUCH"), None);
    }
}
