//! The interpreter environment that lets backend functions execute.
//!
//! Backend code references target enums (`RISCV::fixup_riscv_hi16`,
//! `ELF::R_RISCV_HI16`), LLVM enums (`ISD::ADD`, `MCDisassembler::Success`)
//! and opaque parameter objects (`Fixup.getTargetKind()`). [`ArchEnv`]
//! resolves all of these against one [`ArchSpec`]. Generated code that names
//! things the target does not have (a classic Err-V symptom) fails cleanly
//! with an [`EvalError`], which regression testing counts as a miscompile.

use crate::arch::{isd_value, vt_value, ArchSpec, FIRST_TARGET_FIXUP_KIND, GENERIC_FIXUPS};
use std::collections::HashMap;
use vega_cpplite::{Env, EvalError, Value};

/// Base value of instruction enum members (`NS::ADD`), chosen to be disjoint
/// from fixup kinds, relocation numbers and register numbers.
pub const INSTR_VALUE_BASE: i64 = 1000;

/// Opaque objects referenced via [`Value::Handle`].
#[derive(Debug, Clone, PartialEq)]
pub enum ObjData {
    /// An `MCFixup`: kind + offset.
    Fixup {
        /// Fixup kind value (generic or `FirstTargetFixupKind + i`).
        kind: i64,
        /// Byte offset of the fixup.
        offset: i64,
    },
    /// An `MCValue` with a symbol modifier (variant kind value).
    McValue {
        /// Access variant value; 0 is `VK_None`.
        modifier: i64,
    },
    /// A machine instruction with a target opcode value.
    Inst {
        /// The target opcode (`INSTR_VALUE_BASE + index`).
        opcode: i64,
        /// Operand register numbers.
        regs: Vec<i64>,
        /// Immediate operand, if any.
        imm: i64,
    },
    /// A `MachineFunction` context.
    MachineFunction {
        /// Whether the function needs a frame pointer.
        has_fp: bool,
    },
}

/// Interpreter environment bound to one architecture.
#[derive(Debug)]
pub struct ArchEnv<'a> {
    spec: &'a ArchSpec,
    objects: HashMap<u64, ObjData>,
    next_handle: u64,
}

impl<'a> ArchEnv<'a> {
    /// Creates an environment over `spec`.
    pub fn new(spec: &'a ArchSpec) -> Self {
        ArchEnv {
            spec,
            objects: HashMap::new(),
            next_handle: 1,
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ArchSpec {
        self.spec
    }

    /// Allocates an opaque object, returning its handle value.
    pub fn alloc(&mut self, data: ObjData) -> Value {
        let h = self.next_handle;
        self.next_handle += 1;
        self.objects.insert(h, data);
        Value::Handle(h)
    }

    /// The value of an instruction enum member (`NS::<name>`).
    pub fn instr_value(&self, name: &str) -> Option<i64> {
        self.spec
            .instrs
            .iter()
            .position(|i| i.name == name)
            .map(|i| INSTR_VALUE_BASE + i as i64)
    }

    /// The value of a variant-kind enum member.
    pub fn variant_kind_value(&self, name: &str) -> Option<i64> {
        self.spec
            .variant_kinds
            .iter()
            .position(|v| v == name)
            .map(|i| i as i64 + 1)
    }

    fn resolve_in_namespace(&self, member: &str) -> Option<i64> {
        self.spec
            .fixup_value(member)
            .or_else(|| self.instr_value(member))
            .or_else(|| self.variant_kind_value(member))
            .or_else(|| self.spec.reg_number(member).map(i64::from))
    }
}

impl Env for ArchEnv<'_> {
    fn lookup_path(&self, parts: &[String]) -> Result<Value, EvalError> {
        let unknown = || EvalError::new(format!("unknown path `{}`", parts.join("::")));
        let v = match parts {
            [single] => match single.as_str() {
                "FirstTargetFixupKind" => Some(FIRST_TARGET_FIXUP_KIND),
                s => GENERIC_FIXUPS
                    .iter()
                    .position(|f| *f == s)
                    .map(|i| i as i64),
            },
            [ns, member] => match ns.as_str() {
                "ISD" => isd_value(member).or(match member.as_str() {
                    "VEC_ADD" => Some(101),
                    "VEC_MUL" => Some(103),
                    "DELETED_NODE" => Some(0),
                    _ => None,
                }),
                "MVT" => vt_value(member),
                "ELF" => self.spec.reloc_value(member),
                "MCDisassembler" => match member.as_str() {
                    "Fail" => Some(0),
                    "SoftFail" => Some(1),
                    "Success" => Some(3),
                    _ => None,
                },
                "MCSymbolRefExpr" => (member == "VK_None").then_some(0),
                "TargetLowering" => match member.as_str() {
                    "AM_Base" => Some(0),
                    "AM_BaseImm" => Some(1),
                    "AM_BaseReg" => Some(2),
                    "AM_PCRel" => Some(3),
                    _ => None,
                },
                ns if ns == self.spec.name => self.resolve_in_namespace(member),
                _ => None,
            },
            _ => None,
        };
        v.map(Value::Int).ok_or_else(unknown)
    }

    fn call(&mut self, name: &str, _args: &[Value]) -> Result<Value, EvalError> {
        match name {
            // Diagnostics in backend code abort compilation; the regression
            // harness treats that as a failed test, like a real crash would.
            "llvm_unreachable" | "report_fatal_error" => {
                Err(EvalError::new(format!("`{name}` reached")))
            }
            _ => Err(EvalError::new(format!("unknown function `{name}`"))),
        }
    }

    fn method(&mut self, obj: &Value, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        let Value::Handle(h) = obj else {
            return Err(EvalError::new(format!("method `{name}` on non-object")));
        };
        let data = self
            .objects
            .get(h)
            .ok_or_else(|| EvalError::new("dangling handle"))?
            .clone();
        match (&data, name) {
            (ObjData::Fixup { kind, .. }, "getTargetKind" | "getKind") => Ok(Value::Int(*kind)),
            (ObjData::Fixup { offset, .. }, "getOffset") => Ok(Value::Int(*offset)),
            (ObjData::McValue { modifier }, "getAccessVariant" | "getModifier") => {
                Ok(Value::Int(*modifier))
            }
            (ObjData::Inst { opcode, .. }, "getOpcode") => Ok(Value::Int(*opcode)),
            (ObjData::Inst { regs, .. }, "getReg") => {
                let i = args
                    .first()
                    .ok_or_else(|| EvalError::new("getReg needs an index"))?
                    .as_int()? as usize;
                regs.get(i)
                    .copied()
                    .map(Value::Int)
                    .ok_or_else(|| EvalError::new("operand index out of range"))
            }
            (ObjData::Inst { imm, .. }, "getImm") => Ok(Value::Int(*imm)),
            (ObjData::MachineFunction { has_fp }, "hasFP") => Ok(Value::Int(i64::from(*has_fp))),
            _ => Err(EvalError::new(format!("unknown method `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::eval_targets;
    use vega_cpplite::{parse_function, Interp};

    #[test]
    fn resolves_target_and_llvm_paths() {
        let rv = &eval_targets()[0];
        let env = ArchEnv::new(rv);
        let fix = &rv.fixups[0].name;
        assert_eq!(
            env.lookup_path(&["RISCV".into(), fix.clone()]).unwrap(),
            Value::Int(FIRST_TARGET_FIXUP_KIND)
        );
        assert_eq!(
            env.lookup_path(&["ELF".into(), "R_RISCV_NONE".into()])
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            env.lookup_path(&["ISD".into(), "ADD".into()]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            env.lookup_path(&["FK_Data_4".into()]).unwrap(),
            Value::Int(3)
        );
        assert!(env
            .lookup_path(&["ARM".into(), "fixup_arm_hi16".into()])
            .is_err());
    }

    #[test]
    fn executes_reloc_function_with_objects() {
        let rv = &eval_targets()[0];
        let fix = rv.fixups[0].clone();
        let src = format!(
            "unsigned getRelocType(const MCFixup &Fixup, bool IsPCRel) {{\n\
             unsigned Kind = Fixup.getTargetKind();\n\
             if (IsPCRel) {{ if (Kind == RISCV::{}) {{ return ELF::{}; }} }}\n\
             return ELF::R_RISCV_NONE;\n}}",
            fix.name,
            fix.reloc_pcrel.clone().unwrap()
        );
        let f = parse_function(&src).unwrap();
        let mut env = ArchEnv::new(rv);
        let kind = rv.fixup_value(&fix.name).unwrap();
        let fixup = env.alloc(ObjData::Fixup { kind, offset: 0 });
        let mut it = Interp::new(&mut env);
        let out = it.run_function(&f, &[fixup, Value::Int(1)]).unwrap();
        let expected = rv.reloc_value(fix.reloc_pcrel.as_ref().unwrap()).unwrap();
        assert_eq!(out, Value::Int(expected));
    }

    #[test]
    fn register_and_instr_values() {
        let rv = &eval_targets()[0];
        let env = ArchEnv::new(rv);
        assert_eq!(
            env.lookup_path(&["RISCV".into(), "X0".into()]).unwrap(),
            Value::Int(0)
        );
        let first_instr = rv.instrs[0].name.clone();
        assert_eq!(
            env.lookup_path(&["RISCV".into(), first_instr]).unwrap(),
            Value::Int(INSTR_VALUE_BASE)
        );
    }

    #[test]
    fn unreachable_is_an_error() {
        let rv = &eval_targets()[0];
        let mut env = ArchEnv::new(rv);
        assert!(env.call("llvm_unreachable", &[]).is_err());
    }
}
