//! A tiny deterministic RNG (splitmix64) used for corpus synthesis.
//!
//! The corpus must be bit-for-bit reproducible across platforms and crate
//! versions, so we avoid external RNG crates here.

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct Mix64 {
    state: u64,
}

impl Mix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Mix64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent generator from a string key (stable hashing).
    ///
    /// # Examples
    /// ```
    /// use vega_corpus::Mix64;
    /// let a = Mix64::keyed(7, "ARM/getRelocType").next_u64();
    /// let b = Mix64::keyed(7, "ARM/getRelocType").next_u64();
    /// assert_eq!(a, b);
    /// ```
    pub fn keyed(seed: u64, key: &str) -> Self {
        let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Mix64::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Chooses `k` distinct indices out of `n` (order preserved).
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates.
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        let mut sel = idx[..k].to_vec();
        sel.sort_unstable();
        sel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Mix64::new(42);
        let mut b = Mix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keyed_streams_differ() {
        assert_ne!(
            Mix64::keyed(1, "x").next_u64(),
            Mix64::keyed(1, "y").next_u64()
        );
        assert_ne!(
            Mix64::keyed(1, "x").next_u64(),
            Mix64::keyed(2, "x").next_u64()
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = Mix64::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn choose_indices_distinct_sorted() {
        let mut r = Mix64::new(9);
        let sel = r.choose_indices(10, 4);
        assert_eq!(sel.len(), 4);
        let mut dedup = sel.clone();
        dedup.dedup();
        assert_eq!(dedup, sel);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Mix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }
}
