//! The miniature LLVM-provided code base (`LLVMDIRs`).
//!
//! These files play the role of the gray boxes in the paper's Fig. 1: the
//! target-independent code generator and TableGen base classes. Feature
//! selection (Algorithm 1) harvests its `PropList` — class names, enum names
//! and global variables — from exactly these files, and every property's
//! *identified site* must live here.

use crate::arch::{GENERIC_FIXUPS, ISD_OPCODES, VALUE_TYPES};
use crate::vfs::VirtualFs;

/// Directory prefixes of the LLVM-provided code, as in the paper.
pub const LLVM_DIRS: &[&str] = &[
    "llvm/CodeGen",
    "llvm/MC",
    "llvm/BinaryFormat",
    "llvm/Target",
];

/// Directory prefixes of target description files for target `ns`.
pub fn tgt_dirs(ns: &str) -> Vec<String> {
    vec![
        format!("lib/Target/{ns}"),
        "llvm/BinaryFormat/ELFRelocs".to_string(),
    ]
}

/// Builds the LLVM-provided virtual file system (shared by all targets).
pub fn llvm_provided() -> VirtualFs {
    let mut fs = VirtualFs::new();

    // --- llvm/MC -----------------------------------------------------------
    let mut fixup_h = String::from(
        "// Generic fixup kinds and the MCFixup record.\nclass MCFixup {\n  unsigned Kind;\n  unsigned Offset;\n};\nenum MCFixupKind {\n",
    );
    for (i, f) in GENERIC_FIXUPS.iter().enumerate() {
        fixup_h.push_str(&format!("  {f} = {i},\n"));
    }
    fixup_h.push_str("  FirstTargetFixupKind = 64,\n};\n");
    fixup_h.push_str("class MCFixupKindInfo {\n  unsigned TargetOffset;\n  unsigned TargetSize;\n  unsigned Flags;\n};\n");
    fs.write("llvm/MC/MCFixup.h", fixup_h);

    fs.write(
        "llvm/MC/MCExpr.h",
        "// Symbol reference expressions.\nclass MCExpr {\n};\nclass MCSymbolRefExpr {\n  enum VariantKind {\n    VK_None = 0,\n  };\n};\n",
    );
    fs.write(
        "llvm/MC/MCValue.h",
        "class MCValue {\n  unsigned Modifier;\n};\n",
    );
    fs.write("llvm/MC/MCContext.h", "class MCContext {\n};\n");
    fs.write(
        "llvm/MC/MCInst.h",
        "class MCInst {\n  unsigned Opcode;\n};\nclass MCOperand {\n  unsigned Reg;\n  unsigned Imm;\n};\n",
    );
    fs.write(
        "llvm/MC/MCDisassembler.h",
        "class MCDisassembler {\n  enum DecodeStatus {\n    Fail = 0,\n    SoftFail = 1,\n    Success = 3,\n  };\n};\n",
    );
    fs.write(
        "llvm/MC/MCSchedule.h",
        "class MCSchedModel {\n  unsigned IssueWidth;\n  unsigned LoadLatency;\n};\n",
    );
    fs.write(
        "llvm/MC/MCAsmBackend.h",
        "class MCAsmBackend {\n  unsigned NumFixupKinds;\n};\n",
    );
    fs.write(
        "llvm/MC/MCELFObjectWriter.h",
        "class MCELFObjectTargetWriter {\n  unsigned OSABI;\n};\n",
    );

    // --- llvm/CodeGen ------------------------------------------------------
    let mut isd =
        String::from("// Generic selection DAG opcodes.\nenum ISD {\n  DELETED_NODE = 0,\n");
    for (i, op) in ISD_OPCODES.iter().enumerate() {
        isd.push_str(&format!("  {op} = {},\n", i + 1));
    }
    // Vector forms mirror the scalar ones at +100.
    isd.push_str("  VEC_ADD = 101,\n  VEC_MUL = 103,\n};\n");
    fs.write("llvm/CodeGen/ISDOpcodes.h", isd);

    let mut mvt = String::from("enum MVT {\n");
    for (i, v) in VALUE_TYPES.iter().enumerate() {
        mvt.push_str(&format!("  {v} = {},\n", i + 1));
    }
    mvt.push_str("};\n");
    fs.write("llvm/CodeGen/MachineValueType.h", mvt);

    fs.write(
        "llvm/CodeGen/MachineInstr.h",
        "class MachineInstr {\n  unsigned Opcode;\n};\nclass MachineFunction {\n};\nclass MachineOperand {\n  unsigned Reg;\n};\n",
    );
    fs.write(
        "llvm/CodeGen/TargetInstrInfo.h",
        "class TargetInstrInfo {\n  unsigned CallFrameSetupOpcode;\n};\n",
    );
    fs.write(
        "llvm/CodeGen/TargetRegisterInfo.h",
        "class TargetRegisterInfo {\n  unsigned NumRegs;\n};\nclass TargetRegisterClass {\n  unsigned ID;\n};\n",
    );
    fs.write(
        "llvm/CodeGen/SelectionDAG.h",
        "class SelectionDAG {\n};\nclass SDNode {\n  unsigned Opcode;\n};\nclass SDValue {\n};\n",
    );
    fs.write(
        "llvm/CodeGen/TargetLowering.h",
        "class TargetLowering {\n  enum AddrMode {\n    AM_Base = 0,\n    AM_BaseImm = 1,\n    AM_BaseReg = 2,\n    AM_PCRel = 3,\n  };\n};\n",
    );

    // --- llvm/Target -------------------------------------------------------
    // The TableGen base classes; every global assigned in target .td files is
    // declared here. This is where partial-match feature selection finds the
    // `identified site` of properties like OperandType and Name.
    fs.write(
        "llvm/Target/Target.td",
        r#"// TableGen target-description base classes.
class Target {
  Name = ""
  Endianness = ""
  WordBits = 0
  CommentString = ""
}
class Instruction {
  Mnemonic = ""
  OperandType = ""
  Format = ""
  Latency = 0
  MicroOps = 0
  Opcode = 0
  IsBranch = 0
  IsLoad = 0
  IsStore = 0
  RelaxedTo = ""
  SelectFrom = ""
}
class RegisterClass {
  RegPrefix = ""
  NumRegs = 0
  SpillSize = 0
  ValueType = ""
}
class SpecialRegs {
  StackPointer = ""
  FramePointer = ""
  ReturnAddress = ""
}
class ImmOperand {
  ImmBits = 0
}
class ProcessorFeatures {
  HasHWLoop = 0
  HasSIMD = 0
  HasMAC = 0
  HasCompressed = 0
  HasThreads = 0
  HasForwarding = 0
  HasCMov = 0
  HasFPU = 0
}
"#,
    );

    // --- llvm/BinaryFormat -------------------------------------------------
    fs.write(
        "llvm/BinaryFormat/ELF.h",
        "// ELF relocation enums are generated from ELFRelocs/<Target>.def.\nenum ELF {\n  EM_NONE = 0,\n};\nclass ELFObjectFile {\n};\n",
    );

    fs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_files_under_llvm_dirs() {
        let fs = llvm_provided();
        for (path, _) in fs.iter() {
            assert!(
                LLVM_DIRS.iter().any(|d| path.starts_with(d)),
                "{path} outside LLVMDIRs"
            );
        }
        assert!(fs.len() >= 15);
    }

    #[test]
    fn key_motivating_example_sites_exist() {
        let fs = llvm_provided();
        let mcexpr = fs.read("llvm/MC/MCExpr.h").unwrap();
        assert!(mcexpr.contains("MCSymbolRefExpr"));
        assert!(mcexpr.contains("VariantKind"));
        let target_td = fs.read("llvm/Target/Target.td").unwrap();
        assert!(target_td.contains("OperandType"));
        assert!(target_td.contains("Name = \"\""));
        let fixup = fs.read("llvm/MC/MCFixup.h").unwrap();
        assert!(fixup.contains("MCFixupKind"));
        assert!(fixup.contains("FirstTargetFixupKind = 64"));
    }

    #[test]
    fn tgt_dirs_are_per_target() {
        let d = tgt_dirs("RISCV");
        assert_eq!(d[0], "lib/Target/RISCV");
        assert_eq!(d[1], "llvm/BinaryFormat/ELFRelocs");
    }
}
