//! Corpus assembly: targets, description files, reference backends and the
//! function-group view the VEGA pipeline consumes.

use crate::arch::ArchSpec;
use crate::backend::{Backend, Module};
use crate::blueprints::{all_blueprints, Blueprint};
use crate::llvmdirs::llvm_provided;
use crate::rng::Mix64;
use crate::targets::{builtin_targets, eval_targets, synthetic_target};
use crate::tdgen::describe_target;
use crate::vfs::VirtualFs;
use std::collections::BTreeMap;
use vega_cpplite::{inline_function, normalize_stmts, parse_function, Function, ParseError};

/// Corpus construction parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed; everything derived is deterministic in it.
    pub seed: u64,
    /// Number of procedurally generated `SynNN` training targets.
    pub synthetic_targets: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0,
            synthetic_targets: 4,
        }
    }
}

impl CorpusConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> Self {
        CorpusConfig {
            seed: 0,
            synthetic_targets: 4,
        }
    }
}

/// Everything the corpus knows about one target.
#[derive(Debug, Clone)]
pub struct TargetData {
    /// The ground-truth architecture (never shown to VEGA for new targets).
    pub spec: ArchSpec,
    /// The target description files — `TGTDIRs` content for this target.
    pub descriptions: VirtualFs,
    /// The preprocessed reference backend (helpers inlined, selection chains
    /// normalized, per §3.1).
    pub backend: Backend,
}

/// The full corpus: LLVM-provided code plus per-target data. Evaluation
/// targets (RISC-V, RI5CY, xCORE) are stored alongside training targets; the
/// pipeline excludes them from training by name, as the paper does (§4.1.2).
#[derive(Debug, Clone)]
pub struct Corpus {
    llvm: VirtualFs,
    targets: Vec<TargetData>,
}

/// Names of the three held-out evaluation targets.
pub const EVAL_TARGET_NAMES: [&str; 3] = ["RISCV", "RI5CY", "XCore"];

/// A target name that does not exist in the corpus, with the names that do —
/// the error [`Corpus::try_target`] returns instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTarget {
    /// The requested (missing) target name.
    pub name: String,
    /// Every target the corpus actually holds, in corpus order.
    pub available: Vec<String>,
}

impl std::fmt::Display for UnknownTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown target `{}`; available targets: {}",
            self.name,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for UnknownTarget {}

impl Corpus {
    /// Builds the corpus: 12 hand-modelled training targets, the configured
    /// number of synthetic targets, and the 3 evaluation targets.
    ///
    /// # Panics
    /// Panics if a blueprint renders unparseable code — a corpus bug, caught
    /// by the blueprint test suite.
    pub fn build(config: &CorpusConfig) -> Self {
        let obs = vega_obs::global();
        let build_span = obs.span("corpus.build");
        let mut specs = builtin_targets(config.seed);
        for i in 0..config.synthetic_targets {
            specs.push(synthetic_target(config.seed, i));
        }
        specs.extend(eval_targets());
        let blueprints = all_blueprints();
        // Each target builds independently on the pool; results come back in
        // spec order, so the corpus layout is thread-count independent. The
        // workers adopt the `corpus.build` span, keeping per-target child
        // spans at `corpus.build.<name>`.
        let targets: Vec<TargetData> = vega_par::par_map(specs, |_, spec| {
            let tspan = obs.span(&spec.name);
            let t =
                build_target(spec, &blueprints, config.seed).expect("corpus blueprint must parse");
            let _ = tspan.finish();
            obs.counter_add("corpus.targets", 1);
            obs.counter_add("corpus.functions", t.backend.iter().count() as u64);
            t
        });
        let _ = build_span.finish();
        Corpus {
            llvm: llvm_provided(),
            targets,
        }
    }

    /// The LLVM-provided file system (`LLVMDIRs`).
    pub fn llvm_fs(&self) -> &VirtualFs {
        &self.llvm
    }

    /// All targets, training and evaluation.
    pub fn targets(&self) -> &[TargetData] {
        &self.targets
    }

    /// Looks up a target by namespace name.
    pub fn target(&self, name: &str) -> Option<&TargetData> {
        self.targets.iter().find(|t| t.spec.name == name)
    }

    /// Looks up a target by namespace name, or reports which targets exist.
    ///
    /// # Errors
    /// Returns [`UnknownTarget`] naming the missing target and listing every
    /// available one — callers that face user input (probe binaries, the
    /// serving layer) render this instead of panicking.
    pub fn try_target(&self, name: &str) -> Result<&TargetData, UnknownTarget> {
        self.target(name).ok_or_else(|| UnknownTarget {
            name: name.to_string(),
            available: self.targets.iter().map(|t| t.spec.name.clone()).collect(),
        })
    }

    /// Training targets only (evaluation targets excluded).
    pub fn training_targets(&self) -> impl Iterator<Item = &TargetData> {
        self.targets
            .iter()
            .filter(|t| !EVAL_TARGET_NAMES.contains(&t.spec.name.as_str()))
    }

    /// The function groups over the given targets: interface name →
    /// `(module, [(target, function)])`, keyed in name order.
    pub fn function_groups<'a>(
        &'a self,
        include_eval: bool,
    ) -> BTreeMap<String, (Module, Vec<(&'a str, &'a Function)>)> {
        let mut out: BTreeMap<String, (Module, Vec<(&str, &Function)>)> = BTreeMap::new();
        for t in &self.targets {
            if !include_eval && EVAL_TARGET_NAMES.contains(&t.spec.name.as_str()) {
                continue;
            }
            for (name, module, f) in t.backend.iter() {
                out.entry(name.to_string())
                    .or_insert_with(|| (module, Vec::new()))
                    .1
                    .push((t.spec.name.as_str(), f));
            }
        }
        out
    }

    /// A combined description-file system spanning the given target plus the
    /// shared `ELFRelocs` directory — the `TGTDIRs` view for one target.
    pub fn tgt_fs(&self, target: &str) -> Option<&VirtualFs> {
        self.target(target).map(|t| &t.descriptions)
    }
}

fn build_target(
    spec: ArchSpec,
    blueprints: &[Blueprint],
    seed: u64,
) -> Result<TargetData, ParseError> {
    let descriptions = describe_target(&spec);
    let mut backend = Backend::new(spec.name.clone());
    for bp in blueprints {
        let mut rng = Mix64::keyed(seed, &format!("{}/{}", spec.name, bp.name));
        let Some(rendered) = (bp.render)(&spec, &mut rng) else {
            continue;
        };
        let mut main = parse_function(&rendered.main)?;
        let helpers: Vec<Function> = rendered
            .helpers
            .iter()
            .map(|h| parse_function(h))
            .collect::<Result<_, _>>()?;
        // Preprocessing per §3.1: recursively inline same-target helpers,
        // then normalize selection chains into switches.
        if !helpers.is_empty() {
            main = inline_function(&main, &|name| helpers.iter().find(|h| h.name == name));
        }
        normalize_stmts(&mut main.body);
        backend.insert(bp.module, main);
    }
    Ok(TargetData {
        spec,
        descriptions,
        backend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_and_groups() {
        let c = Corpus::build(&CorpusConfig::tiny());
        // 12 builtin + 4 synthetic + 3 eval.
        assert_eq!(c.targets().len(), 19);
        let groups = c.function_groups(false);
        assert!(
            groups.len() >= 30,
            "expected ≥30 groups, got {}",
            groups.len()
        );
        // getRelocType exists for every training target.
        let (module, members) = &groups["getRelocType"];
        assert_eq!(*module, Module::Emi);
        assert_eq!(members.len(), 16);
        // Trait-gated groups cover only the targets with the trait.
        let (_, mac) = &groups["combineMulAdd"];
        assert!(!mac.is_empty() && mac.len() < 16);
        // DIS exists for XCore in no view (eval included or not).
        let with_eval = c.function_groups(true);
        assert!(with_eval["decodeInstruction"]
            .1
            .iter()
            .all(|(t, _)| *t != "XCore"));
    }

    #[test]
    fn try_target_names_the_missing_target_and_lists_available() {
        let c = Corpus::build(&CorpusConfig::tiny());
        assert!(c.try_target("RISCV").is_ok());
        let err = c.try_target("Z80").unwrap_err();
        assert_eq!(err.name, "Z80");
        assert_eq!(err.available.len(), c.targets().len());
        let msg = err.to_string();
        assert!(msg.contains("unknown target `Z80`"), "{msg}");
        assert!(msg.contains("RISCV"), "{msg}");
    }

    #[test]
    fn eval_targets_present_but_excluded_from_training() {
        let c = Corpus::build(&CorpusConfig::tiny());
        assert!(c.target("RISCV").is_some());
        assert!(c.training_targets().all(|t| t.spec.name != "RISCV"));
        let with_eval = c.function_groups(true);
        let without = c.function_groups(false);
        assert!(with_eval["getRelocType"].1.len() > without["getRelocType"].1.len());
    }

    #[test]
    fn helpers_are_inlined_in_reference_backends() {
        let c = Corpus::build(&CorpusConfig::tiny());
        for t in c.targets() {
            if let Some(f) = t.backend.function("getRelocType") {
                let text = vega_cpplite::render_function(f);
                assert!(
                    !text.contains("GetRelocTypeInner"),
                    "helper not inlined for {}",
                    t.spec.name
                );
            }
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::build(&CorpusConfig::tiny());
        let b = Corpus::build(&CorpusConfig::tiny());
        for (ta, tb) in a.targets().iter().zip(b.targets()) {
            assert_eq!(ta.spec, tb.spec);
            for (name, _, f) in ta.backend.iter() {
                assert_eq!(Some(f), tb.backend.function(name), "{name} differs");
            }
        }
    }

    #[test]
    fn backends_have_realistic_sizes() {
        let c = Corpus::build(&CorpusConfig::tiny());
        for t in c.targets() {
            assert!(t.backend.len() >= 25, "{} too few functions", t.spec.name);
            assert!(
                t.backend.stmt_count() >= 150,
                "{} too few statements: {}",
                t.spec.name,
                t.backend.stmt_count()
            );
        }
    }
}
