//! `vega-fault` — seed-deterministic fault injection for chaos testing.
//!
//! Disks lie, sockets drop, and worker threads panic; the serving stack has
//! to recover from all of it without giving up byte-identical outputs. This
//! crate is the substrate the whole workspace uses to *prove* that: named
//! fault **sites** are threaded through corpus VFS reads, checkpoint
//! save/load, `vega-par` workers, and the vega-serve connection path, and a
//! [`FaultPlan`] decides — purely as a function of `(seed, site, hit index)`
//! — which hits fail. Two runs with the same plan and workload therefore
//! inject the *identical* fault sequence, which turns chaos tests from
//! flaky-sleep lotteries into ordinary deterministic assertions.
//!
//! Design points:
//!
//! * **Zero cost when disabled.** With no plan installed, [`check`] is a
//!   single relaxed atomic load returning `None`; no site allocates, locks,
//!   or branches further. Production behaviour with `VEGA_FAULT_PLAN` unset
//!   is bit-identical to a build without the instrumentation.
//! * **Seeded, counted decisions.** Each site keeps a hit counter inside the
//!   plan; hit `i` of site `s` fires iff `mix(seed, fnv(s), i)` falls under
//!   the site's configured rate (or `i` equals an explicit `@index`
//!   trigger). No wall clocks, no OS randomness.
//! * **Observable.** Every fired fault bumps the `fault.injected.<site>`
//!   counter on the global [`vega_obs`] handle (plus a debug event), leaves
//!   a `site#hit` record in the [`vega_obs::flight`] recorder stamped with
//!   the active trace context when the recorder is enabled, and
//!   recovery paths report [`recovered`] into `fault.recovered.<site>`, so a
//!   JSONL trace shows exactly what was injected and what was survived —
//!   recovery behaviour is itself assertable.
//! * **Env or in-process.** The daemon reads the `VEGA_FAULT_PLAN` env var
//!   once on first use; tests install plans directly with [`set_plan`] and
//!   clear them with `set_plan(None)`.
//!
//! Plan syntax (clauses separated by `;`):
//!
//! ```text
//! VEGA_FAULT_PLAN="seed=7;serve.conn.drop=0.2;serve.conn.stall=0.1:25;ckpt.save.crash=@0"
//! ```
//!
//! * `seed=<u64>` — the plan seed (default 0).
//! * `<site>=<rate>` — fire each hit independently with probability `rate`
//!   (a float in `[0, 1]`), decided by the seeded hash.
//! * `<site>=@<index>` — fire exactly the `<index>`-th hit of the site
//!   (0-based), once.
//! * An optional `:<arg>` suffix carries a site-specific integer argument
//!   (milliseconds for stall sites).
//!
//! The well-known sites are listed in [`sites`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Well-known site names, so call sites and plans cannot drift apart.
pub mod sites {
    /// A corpus [`VirtualFs`](../vega_corpus) read; recovery = bounded retry.
    pub const VFS_READ: &str = "vfs.read";
    /// A `vega-par` worker task; recovery = bounded deterministic retry,
    /// then clean panic propagation.
    pub const PAR_TASK: &str = "par.task";
    /// A crash in the middle of writing a checkpoint temp file; recovery =
    /// the previous checkpoint file is left intact.
    pub const CKPT_SAVE_CRASH: &str = "ckpt.save.crash";
    /// A vega-serve connection dropped before the response is written;
    /// recovery = client reconnect + resend with backoff.
    pub const SERVE_CONN_DROP: &str = "serve.conn.drop";
    /// A vega-serve response stalled by the site argument in milliseconds;
    /// recovery = the response still arrives within the read timeout.
    pub const SERVE_CONN_STALL: &str = "serve.conn.stall";
    /// A malformed frame written instead of the response; recovery = client
    /// detects the bad frame and resends.
    pub const SERVE_CONN_CORRUPT: &str = "serve.conn.corrupt";
    /// The client-side recovery counter shared by the drop and corrupt
    /// sites (one recovery per failed-then-retried attempt).
    pub const SERVE_CONN: &str = "serve.conn";
    /// A vega-serve hot model swap failing after the new checkpoint was
    /// loaded but before the flip; recovery = the old model keeps serving.
    pub const SERVE_SWAP: &str = "serve.swap";
    /// A continuous-batching decode slot killed mid-generation; recovery =
    /// the broker replays the session from scratch (generation is a pure
    /// function of weights + input, so the replay is byte-identical).
    pub const SERVE_BATCH: &str = "serve.batch";
}

/// A fault [`check`] decided to fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Site-specific integer argument from the plan clause (`:<arg>`), 0
    /// when absent. Stall sites read it as milliseconds.
    pub arg: u64,
    /// Which hit of the site this was (0-based), for diagnostics.
    pub hit: u64,
}

/// A malformed `VEGA_FAULT_PLAN` / [`FaultPlan::parse`] input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// What was malformed, naming the offending clause.
    pub msg: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault plan: {}", self.msg)
    }
}

impl std::error::Error for PlanError {}

/// When a site's hits fire.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Each hit fires independently with this probability.
    Rate(f64),
    /// Exactly this hit index fires, once.
    At(u64),
}

#[derive(Debug)]
struct SiteRule {
    trigger: Trigger,
    arg: u64,
    hits: AtomicU64,
}

/// A parsed fault plan: a seed plus per-site trigger rules and hit counters.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: BTreeMap<String, SiteRule>,
    /// Every fired `(site, hit index)`, for determinism assertions.
    fired: Mutex<Vec<(String, u64)>>,
}

/// 64-bit FNV-1a over raw bytes — the workspace's stable hash primitive
/// (also used as the checkpoint integrity digest in `vega-model`).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a_64`] rendered as fixed-width lowercase hex.
pub fn fnv1a_64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

/// splitmix64 finalizer — decorrelates the (seed, site, hit) key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parses the `VEGA_FAULT_PLAN` syntax described in the crate docs.
    ///
    /// # Errors
    /// [`PlanError`] naming the malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanError> {
        let mut seed = 0u64;
        let mut rules = BTreeMap::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((site, rhs)) = clause.split_once('=') else {
                return Err(PlanError {
                    msg: format!("clause `{clause}` is not `name=value`"),
                });
            };
            let (site, rhs) = (site.trim(), rhs.trim());
            if site == "seed" {
                seed = rhs.parse().map_err(|_| PlanError {
                    msg: format!("seed `{rhs}` is not a u64"),
                })?;
                continue;
            }
            let (trigger_str, arg_str) = match rhs.split_once(':') {
                Some((t, a)) => (t.trim(), Some(a.trim())),
                None => (rhs, None),
            };
            let trigger = if let Some(ix) = trigger_str.strip_prefix('@') {
                Trigger::At(ix.parse().map_err(|_| PlanError {
                    msg: format!("`{clause}`: `@{ix}` is not a u64 hit index"),
                })?)
            } else {
                let rate: f64 = trigger_str.parse().map_err(|_| PlanError {
                    msg: format!("`{clause}`: `{trigger_str}` is neither a rate nor `@index`"),
                })?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(PlanError {
                        msg: format!("`{clause}`: rate {rate} outside [0, 1]"),
                    });
                }
                Trigger::Rate(rate)
            };
            let arg = match arg_str {
                Some(a) => a.parse().map_err(|_| PlanError {
                    msg: format!("`{clause}`: arg `{a}` is not a u64"),
                })?,
                None => 0,
            };
            rules.insert(
                site.to_string(),
                SiteRule {
                    trigger,
                    arg,
                    hits: AtomicU64::new(0),
                },
            );
        }
        Ok(FaultPlan {
            seed,
            rules,
            fired: Mutex::new(Vec::new()),
        })
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Records one hit of `site` and decides whether it fires.
    fn check(&self, site: &str) -> Option<Fault> {
        let rule = self.rules.get(site)?;
        let hit = rule.hits.fetch_add(1, Ordering::Relaxed);
        let fires = match rule.trigger {
            Trigger::At(ix) => hit == ix,
            Trigger::Rate(rate) => {
                let h = mix(self.seed ^ fnv1a_64(site.as_bytes()) ^ hit.wrapping_mul(0x9E39));
                (h as f64 / u64::MAX as f64) < rate
            }
        };
        if !fires {
            return None;
        }
        self.fired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((site.to_string(), hit));
        Some(Fault { arg: rule.arg, hit })
    }

    /// Every fired `(site, hit index)` so far, sorted — the deterministic
    /// fault sequence two same-seed runs must agree on.
    pub fn fired_log(&self) -> Vec<(String, u64)> {
        let mut log = self.fired.lock().unwrap_or_else(|e| e.into_inner()).clone();
        log.sort();
        log
    }
}

/// Whether any plan is installed (fast path for the disabled case).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed plan; `Mutex` so tests can swap it.
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
/// Reads `VEGA_FAULT_PLAN` exactly once, unless [`set_plan`] ran first.
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(spec) = std::env::var("VEGA_FAULT_PLAN") else {
            return;
        };
        if spec.trim().is_empty() {
            return;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => {
                vega_obs::info!("[vega-fault] plan active (seed {})", plan.seed());
                *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(plan));
                ENABLED.store(true, Ordering::Release);
            }
            Err(e) => {
                // A malformed plan must never silently disable chaos runs.
                vega_obs::error!("[vega-fault] ignoring malformed VEGA_FAULT_PLAN: {e}");
            }
        }
    });
}

/// Installs (or with `None` removes) a plan in-process, overriding the
/// environment. Intended for tests; takes effect for all subsequent
/// [`check`] calls in the process.
pub fn set_plan(plan: Option<FaultPlan>) {
    ENV_INIT.call_once(|| {}); // the explicit plan wins over the env
    let mut slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(plan.is_some(), Ordering::Release);
    *slot = plan.map(Arc::new);
}

/// The currently installed plan, if any (reading `VEGA_FAULT_PLAN` on first
/// use). Lets tests inspect [`FaultPlan::fired_log`] after a run.
pub fn active_plan() -> Option<Arc<FaultPlan>> {
    init_from_env();
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    PLAN.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Records one hit of `site` against the installed plan and returns the
/// fault to simulate, if the plan fires. With no plan installed this is one
/// relaxed atomic load — instrumented sites cost nothing in production.
///
/// A fired fault bumps the `fault.injected.<site>` counter and emits a
/// debug event on the global obs handle.
pub fn check(site: &str) -> Option<Fault> {
    if !ENABLED.load(Ordering::Relaxed) {
        init_from_env();
        if !ENABLED.load(Ordering::Relaxed) {
            return None;
        }
    }
    let plan = PLAN.lock().unwrap_or_else(|e| e.into_inner()).clone()?;
    let fault = plan.check(site)?;
    let obs = vega_obs::global();
    obs.counter_add(&format!("fault.injected.{site}"), 1);
    vega_obs::flight::record_event(
        vega_obs::flight::FlightKind::Fault,
        &format!("{site}#{}", fault.hit),
        obs.current_trace(),
    );
    if obs.enabled(vega_obs::Level::Debug) {
        obs.event(
            vega_obs::Level::Debug,
            format!("[vega-fault] injected {site} (hit {})", fault.hit),
        );
    }
    Some(fault)
}

/// Reports that one previously injected fault at `site` was recovered from
/// (`fault.recovered.<site>` counter). No-op when no plan is installed, so
/// recovery paths may call it unconditionally.
pub fn recovered(site: &str) {
    recovered_n(site, 1);
}

/// As [`recovered`], counting `n` recoveries at once.
pub fn recovered_n(site: &str, n: u64) {
    if n == 0 || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    vega_obs::global().counter_add(&format!("fault.recovered.{site}"), n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_rates_indices_and_args() {
        let plan = FaultPlan::parse("seed=9; a.b=0.5 ; c=@3:250; d=1.0:7").unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules["c"].trigger, Trigger::At(3));
        assert_eq!(plan.rules["c"].arg, 250);
        assert_eq!(plan.rules["d"].trigger, Trigger::Rate(1.0));
        assert_eq!(plan.rules["d"].arg, 7);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "nonsense",
            "seed=x",
            "s=1.5",
            "s=-0.1",
            "s=@x",
            "s=0.5:x",
            "s=notanumber",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(!err.msg.is_empty(), "{bad} should not parse");
        }
        // Empty specs and stray separators are fine (no rules).
        assert!(FaultPlan::parse("").unwrap().rules.is_empty());
        assert!(FaultPlan::parse(" ; ;").unwrap().rules.is_empty());
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_site_and_hit() {
        let a = FaultPlan::parse("seed=7;x=0.5;y=0.5").unwrap();
        let b = FaultPlan::parse("seed=7;x=0.5;y=0.5").unwrap();
        let seq_a: Vec<bool> = (0..200).map(|_| a.check("x").is_some()).collect();
        let seq_b: Vec<bool> = (0..200).map(|_| b.check("x").is_some()).collect();
        assert_eq!(seq_a, seq_b, "same seed must fire the same hits");
        assert!(seq_a.iter().any(|&f| f) && seq_a.iter().any(|&f| !f));
        // Different sites and different seeds give different sequences.
        let seq_y: Vec<bool> = (0..200).map(|_| a.check("y").is_some()).collect();
        assert_ne!(seq_a, seq_y);
        let seq_y_b: Vec<bool> = (0..200).map(|_| b.check("y").is_some()).collect();
        assert_eq!(seq_y, seq_y_b);
        let c = FaultPlan::parse("seed=8;x=0.5").unwrap();
        let seq_c: Vec<bool> = (0..200).map(|_| c.check("x").is_some()).collect();
        assert_ne!(seq_a, seq_c);
        assert_eq!(a.fired_log(), b.fired_log());
    }

    #[test]
    fn at_index_fires_exactly_once() {
        let plan = FaultPlan::parse("s=@2:99").unwrap();
        let fires: Vec<Option<Fault>> = (0..6).map(|_| plan.check("s")).collect();
        assert!(fires[0].is_none() && fires[1].is_none());
        assert_eq!(fires[2], Some(Fault { arg: 99, hit: 2 }));
        assert!(fires[3..].iter().all(Option::is_none));
    }

    #[test]
    fn rate_extremes_always_and_never_fire() {
        let plan = FaultPlan::parse("all=1.0;none=0.0").unwrap();
        assert!((0..50).all(|_| plan.check("all").is_some()));
        assert!((0..50).all(|_| plan.check("none").is_none()));
        assert!(plan.check("unlisted.site").is_none());
    }

    #[test]
    fn global_install_check_and_clear() {
        set_plan(Some(
            FaultPlan::parse("seed=1;fault.test.site=1.0").unwrap(),
        ));
        let f = check("fault.test.site").expect("rate 1.0 fires");
        assert_eq!(f.hit, 0);
        recovered("fault.test.site");
        let obs = vega_obs::global();
        assert!(obs.counter("fault.injected.fault.test.site") >= 1);
        assert!(obs.counter("fault.recovered.fault.test.site") >= 1);
        let log = active_plan().unwrap().fired_log();
        assert_eq!(log, vec![("fault.test.site".to_string(), 0)]);
        set_plan(None);
        assert!(check("fault.test.site").is_none());
        assert!(active_plan().is_none());
    }

    #[test]
    fn fnv_golden_vectors() {
        // Pinned constants: the checkpoint digest format depends on them.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64_hex(b"abc"), "e71fa2190541574b");
    }
}
