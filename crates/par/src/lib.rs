//! `vega-par` — a zero-dependency deterministic parallel execution layer.
//!
//! The repo's strongest invariant is that two runs of any configuration are
//! bit-identical, and parallelism must not weaken it. The one primitive this
//! crate exports, [`par_map`], therefore makes a hard promise: work items may
//! execute in any order on any worker thread, but results are always handed
//! back **in input-index order**, so every reduction a caller performs over
//! them has a thread-count-independent shape. Combined with callers that keep
//! any floating-point accumulation structure fixed (e.g. gradient shards of a
//! constant size), output is bit-identical for any `VEGA_THREADS`, including 1.
//!
//! Design points:
//!
//! * **Scoped std threads + channels.** Workers are spawned per call with
//!   [`std::thread::scope`] and pull `(index, item)` tasks from a shared
//!   channel; no `unsafe`, no external crates, and borrowed captures work
//!   because the scope outlives the workers.
//! * **Sizing.** The pool size comes from [`set_threads`] (in-process
//!   override, used by tests and benches) or the `VEGA_THREADS` env var,
//!   defaulting to the number of available cores.
//! * **No nesting.** A `par_map` issued from inside a worker runs
//!   sequentially inline — nested fan-out would oversubscribe the machine
//!   and buys nothing, since the outer call already saturates the pool.
//! * **Span re-parenting.** Each call captures the dotted span path active
//!   on the submitting thread (via [`vega_obs::Obs::current_path`]) and
//!   re-establishes it on every worker ([`vega_obs::Obs::adopt_parent`]), so
//!   spans opened inside tasks aggregate under the same
//!   `pipeline.stage3.generate.SEL`-style paths as in a sequential run.
//! * **Panic containment.** Every task runs under `catch_unwind`. The first
//!   panic stops the pool from taking further tasks and its original payload
//!   is re-raised from the `par_map` call site (`resume_unwind`), exactly as
//!   the sequential loop would have panicked — workers never die silently
//!   and the scope never reports a bare "a scoped thread panicked".
//! * **Fault injection.** Each task consults the `par.task` fault site
//!   (`vega-fault`) before running. An injected panic is retried in place —
//!   bounded and deterministic, [`MAX_INJECTED_RETRIES`] attempts — and
//!   counted as recovered; exhausting the budget propagates a clean panic
//!   naming the site. With no fault plan installed the check is one atomic
//!   load.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::thread;

/// How many consecutive injected `par.task` panics are retried before the
/// task is declared dead and a clean panic propagates.
pub const MAX_INJECTED_RETRIES: u64 = 4;

/// Runs one task under `catch_unwind`, first consulting the `par.task`
/// fault site (with bounded retry of injected panics).
fn run_task<T, R, F>(f: &F, i: usize, item: T) -> Result<R, Box<dyn Any + Send>>
where
    F: Fn(usize, T) -> R,
{
    let mut injected = 0u64;
    while vega_fault::check(vega_fault::sites::PAR_TASK).is_some() {
        injected += 1;
        if injected > MAX_INJECTED_RETRIES {
            return Err(Box::new(format!(
                "par.task fault site fired {injected} consecutive times for task {i}; \
                 retry budget ({MAX_INJECTED_RETRIES}) exhausted"
            )));
        }
    }
    vega_fault::recovered_n(vega_fault::sites::PAR_TASK, injected);
    catch_unwind(AssertUnwindSafe(|| f(i, item)))
}

/// In-process override; 0 means "not set, fall back to the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `VEGA_THREADS` (or the core count), read once per process.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// True on pool worker threads; makes nested `par_map` run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the pool size for this process, taking precedence over
/// `VEGA_THREADS`. Passing 0 clears the override. Intended for tests and
/// benches that compare thread counts within one process; results must be
/// identical either way, so flipping this concurrently is safe if odd.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The configured pool size: the [`set_threads`] override if set, else
/// `VEGA_THREADS` if set to a positive integer, else the number of available
/// cores (1 if that cannot be determined).
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o != 0 {
        return o;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("VEGA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// True when called from inside a [`par_map`] worker (where further
/// `par_map` calls run sequentially inline).
pub fn is_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Applies `f` to every `(index, item)` on a scoped worker pool and returns
/// the results **in input order**, regardless of which worker finished when.
/// With one thread configured (or when already inside a worker) it degrades
/// to a plain sequential loop over the same closure.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 || is_worker() {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| match run_task(&f, i, x) {
                Ok(r) => r,
                Err(payload) => resume_unwind(payload),
            })
            .collect();
    }

    let parent = vega_obs::global().current_path();
    // All tasks are queued up front and the sender dropped, so workers never
    // block inside the (mutex-guarded) receiver.
    let (task_tx, task_rx) = mpsc::channel::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        let _ = task_tx.send(pair);
    }
    drop(task_tx);
    let task_rx = Mutex::new(task_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, R)>();

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // First panic payload (real or injected-and-exhausted); re-raised below.
    let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    thread::scope(|s| {
        for _ in 0..workers {
            let res_tx = res_tx.clone();
            let task_rx = &task_rx;
            let parent = parent.as_deref();
            let f = &f;
            let panicked = &panicked;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let _adopt = vega_obs::global().adopt_parent(parent);
                loop {
                    if panicked.lock().unwrap_or_else(|e| e.into_inner()).is_some() {
                        break; // another task already failed; stop drawing work
                    }
                    let task = task_rx.lock().unwrap_or_else(|e| e.into_inner()).try_recv();
                    match task {
                        Ok((i, item)) => match run_task(f, i, item) {
                            Ok(r) => {
                                let _ = res_tx.send((i, r));
                            }
                            Err(payload) => {
                                let mut slot = panicked.lock().unwrap_or_else(|e| e.into_inner());
                                slot.get_or_insert(payload);
                                break;
                            }
                        },
                        Err(_) => break,
                    }
                }
            });
        }
        drop(res_tx);
        // Collect into index slots; arrival order is irrelevant.
        for (i, r) in res_rx.iter() {
            out[i] = Some(r);
        }
    });
    if let Some(payload) = panicked.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
    out.into_iter()
        .map(|r| r.expect("par_map worker delivered every result"))
        .collect()
}

/// Borrowing convenience over [`par_map`]: maps `f` over `&items` and
/// returns results in input order.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items.iter().collect(), |i, x: &T| f(i, x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        set_threads(4);
        let items: Vec<usize> = (0..97).collect();
        let out = par_map(items, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        set_threads(0);
        assert_eq!(out, (0..97).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_thread_and_many_threads_agree() {
        let work = |_, x: u64| {
            // Deliberately order-sensitive f32 accumulation inside one item.
            let mut s = 0.0f32;
            for k in 0..200u64 {
                s += ((x.wrapping_mul(k) % 101) as f32).sqrt();
            }
            s.to_bits()
        };
        set_threads(1);
        let a = par_map((0..50).collect(), work);
        set_threads(4);
        let b = par_map((0..50).collect(), work);
        set_threads(0);
        assert_eq!(a, b);
    }

    #[test]
    fn nested_par_map_runs_inline() {
        set_threads(4);
        let out = par_map(vec![0usize; 8], |_, _| {
            assert!(is_worker());
            // The nested call must not spawn (and must still be correct).
            par_map((0..5).collect::<Vec<usize>>(), |_, x| x + 1)
        });
        set_threads(0);
        for inner in out {
            assert_eq!(inner, vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        set_threads(4);
        let empty: Vec<u8> = par_map(Vec::new(), |_, x: u8| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7u8], |_, x| x + 1), vec![8]);
        set_threads(0);
    }

    #[test]
    fn worker_spans_reparent_under_submitting_span() {
        set_threads(3);
        let outer = vega_obs::global().span("par_test_outer");
        let _ = par_map((0..6).collect::<Vec<usize>>(), |_, _| {
            let g = vega_obs::global().span("task");
            assert_eq!(g.path(), "par_test_outer.task");
        });
        drop(outer);
        set_threads(0);
        assert_eq!(vega_obs::global().span_count("par_test_outer.task"), 6);
    }

    #[test]
    fn slice_variant_borrows() {
        set_threads(2);
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = par_map_slice(&words, |_, w| w.len());
        set_threads(0);
        assert_eq!(lens, vec![1, 2, 3]);
    }
}
