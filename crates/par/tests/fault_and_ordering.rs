//! Adversarial tests for the deterministic pool: result ordering under
//! skewed task durations, panic containment (real panics propagate with
//! their original payload; other workers stop drawing work), and bounded
//! retry of `par.task` injected faults.
//!
//! One `#[test]` — the fault plan, the thread override, and the obs
//! counters are process-global, so scenarios must run sequentially.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use vega_fault::{sites, FaultPlan};
use vega_par::{par_map, set_threads, MAX_INJECTED_RETRIES};

fn injected() -> u64 {
    vega_obs::global().counter(&format!("fault.injected.{}", sites::PAR_TASK))
}

fn recovered() -> u64 {
    vega_obs::global().counter(&format!("fault.recovered.{}", sites::PAR_TASK))
}

/// Runs `f` with the default panic hook silenced, so expected panics do not
/// spam the test output.
fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

#[test]
fn pool_contains_panics_and_retries_injected_faults() {
    // --- ordering under adversarial durations ---------------------------
    // Early tasks sleep longest, so a pool that collected results in
    // completion order (rather than by index) would return them reversed.
    for threads in [1usize, 4] {
        set_threads(threads);
        let out = par_map((0..24u64).collect(), |i, x| {
            std::thread::sleep(Duration::from_millis((23 - x) % 6));
            (i, x * x)
        });
        assert_eq!(
            out,
            (0..24u64).map(|x| (x as usize, x * x)).collect::<Vec<_>>(),
            "results must come back in input order at {threads} thread(s)"
        );
    }

    // --- real panics propagate with their original payload --------------
    for threads in [1usize, 4] {
        set_threads(threads);
        let err = quietly(|| {
            catch_unwind(AssertUnwindSafe(|| {
                par_map((0..16u32).collect(), |_, x| {
                    if x == 5 {
                        panic!("boom-{x}");
                    }
                    x
                })
            }))
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload should be a string");
        assert_eq!(
            msg, "boom-5",
            "the first panic's payload must survive the pool unchanged"
        );
    }

    // --- a single injected fault is retried and recovered ----------------
    set_threads(4);
    let (inj0, rec0) = (injected(), recovered());
    vega_fault::set_plan(Some(
        FaultPlan::parse(&format!("{}=@2", sites::PAR_TASK)).unwrap(),
    ));
    let out = par_map((0..12u32).collect(), |_, x| x + 1);
    vega_fault::set_plan(None);
    assert_eq!(out, (1..=12).collect::<Vec<_>>());
    assert_eq!(injected() - inj0, 1, "the @2 trigger fires exactly once");
    assert_eq!(
        recovered() - rec0,
        1,
        "every injected par.task fault must be recovered by a retry"
    );

    // --- a modest fault rate never corrupts results ----------------------
    // Fire decisions are a pure function of (seed, hit index), so this run
    // is reproducible; a rate of 0.1 stays far below the consecutive-fire
    // retry budget.
    for threads in [1usize, 4] {
        set_threads(threads);
        let (inj0, rec0) = (injected(), recovered());
        vega_fault::set_plan(Some(
            FaultPlan::parse(&format!("seed=5;{}=0.1", sites::PAR_TASK)).unwrap(),
        ));
        let out = par_map((0..40u64).collect(), |i, x| (i as u64) * 100 + x);
        vega_fault::set_plan(None);
        assert_eq!(
            out,
            (0..40u64).map(|x| x * 101).collect::<Vec<_>>(),
            "injected faults must never change results at {threads} thread(s)"
        );
        let inj = injected() - inj0;
        assert!(
            inj > 0,
            "a 0.1 rate over 40+ hits should fire at least once"
        );
        assert_eq!(
            recovered() - rec0,
            inj,
            "injected and recovered counts must match at {threads} thread(s)"
        );
    }

    // --- retry-budget exhaustion propagates as a clean panic --------------
    for threads in [1usize, 4] {
        set_threads(threads);
        vega_fault::set_plan(Some(
            FaultPlan::parse(&format!("{}=1.0", sites::PAR_TASK)).unwrap(),
        ));
        let err = quietly(|| catch_unwind(AssertUnwindSafe(|| par_map(vec![1u8, 2, 3], |_, x| x))))
            .unwrap_err();
        vega_fault::set_plan(None);
        let msg = err
            .downcast_ref::<String>()
            .expect("exhaustion panics carry a String payload");
        assert!(
            msg.contains(sites::PAR_TASK) && msg.contains(&MAX_INJECTED_RETRIES.to_string()),
            "exhaustion message must name the site and the budget, got: {msg}"
        );
    }

    set_threads(0);
}
